//! The multi-core engine: parallel sharded trace replay over the
//! MESI-coherent hierarchy, on a persistent worker pool.
//!
//! Each core replays its own trace shard. Simulated time advances in
//! **cycle quanta** with a barrier between them, and every quantum runs
//! in two phases (the bound/weave idea of ZSim, adapted — see
//! DESIGN.md §7 and §10):
//!
//! 1. **Parallel (bound) phase** — one *persistent* worker thread per
//!    core (spawned once per run, woken through an epoch/`Condvar`
//!    barrier; no thread is created or joined on the hot path) replays
//!    ops its private L1 completes without a directory transaction:
//!    hits with sufficient MESI permission, plain `Exec`, mask ops.
//!    Workers touch disjoint state — their own replay cursor, decoder
//!    lane and L1 — so the phase is data-race-free by construction and
//!    its outcome is independent of thread scheduling. A core stops at
//!    its first op needing a transaction, or at quantum end.
//! 2. **Serial (weave) phase** — cores are resumed on the main thread
//!    in a deterministic round-robin. A turn executes up to
//!    [`RuntimeConfig::weave_batch`] coherence transactions through the
//!    full MESI machinery against the bank-sharded shared levels, but a
//!    transaction that involved another core (recall, invalidation,
//!    cross-core upgrade) always ends the turn — so a run of
//!    independent private misses costs one turn instead of N, while
//!    intra-quantum line ping-pong (false sharing, lock bouncing) keeps
//!    its transaction-granular round-robin interleave.
//!
//! **Determinism.** The bound phase only ever consumes permissions
//! granted by earlier (totally ordered) weave phases, and the weave is
//! totally ordered, so a run's result — every counter, cycle count and
//! exception, including the [`RuntimeStats`] — is **bit-identical**
//! across runs and host thread schedules (tested in
//! `crates/sim/tests/multicore.rs` and
//! `crates/sim/tests/parallel_runtime.rs`). The trade-off is unchanged
//! from any bound-weave simulator: cross-core visibility is
//! quantum-granular. The quantum length is fixed by default and may
//! adapt to observed coherence traffic behind
//! [`RuntimeConfig::quantum_sizing`].
//!
//! Packed traces replay without pre-sharding: [`MulticoreEngine::run_pack`]
//! gives every worker its own [`PackDecoder`] lane over the same pack
//! (core `c` keeps ops with index ≡ `c` mod `cores`), so decode runs in
//! parallel inside the bound phase instead of materialising
//! `Vec<TraceOp>` shards up front; [`MulticoreEngine::run_packs`] does
//! the same for per-core packs.

use crate::checkpoint::{self as ck, CheckpointError};
use crate::coherence::{BankExt, CoherenceConfig, CoherentHierarchy, CoreL1, SpecExec};
use crate::cpu::CoreConfig;
use crate::engine::with_store_data;
use crate::hierarchy::{HierarchyConfig, LevelBank, MemResult};
use crate::runtime::{
    lock_recover, BarrierPhase, BarrierWaitError, QuantumBarrier, QuantumSizing, RuntimeConfig,
    RuntimeStats, RuntimeTiming, ADAPTIVE_SHRINK_THRESHOLD,
};
use crate::stats::{
    CoreWeaveStats, MulticoreStats, ShardWeaveStats, SimStats, WeaveBreakdown, WeaveTimingBreakdown,
};
use crate::trace::TraceOp;
use crate::tracepack::{PackDecoder, TracePack};
use califorms_core::{CaliformsException, CformInstruction, ExceptionMask};
use califorms_telemetry::{LogHistogram, Phase, TelemetryClock, TelemetryReport, TrackRecorder};
use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Configuration of a [`MulticoreEngine`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MulticoreConfig {
    /// Number of cores (= trace shards).
    pub cores: usize,
    /// Quantum length in cycles. Coherence actions of one core become
    /// visible to the others' local fast paths at quantum boundaries;
    /// shorter quanta interleave finer but synchronise more. Under
    /// [`QuantumSizing::Adaptive`] this is the *initial* length.
    pub quantum: f64,
    /// Geometry/latency of the shared hierarchy (per-core L1s use the
    /// L1D parameters; L2/L3/DRAM are shared). The `stream_prefetcher`
    /// and `prefetch_residual` fields are **ignored** — the multi-core
    /// L1s have no prefetcher (DESIGN.md §7), so single-core
    /// `MulticoreEngine` runs of streaming traces report higher memory
    /// latency than [`crate::engine::Engine`] on the same trace.
    pub hierarchy: HierarchyConfig,
    /// Coherence-fabric latencies.
    pub coherence: CoherenceConfig,
    /// Core timing model, applied to every core.
    pub core: CoreConfig,
    /// Parallel-runtime knobs (weave batching, quantum sizing).
    pub runtime: RuntimeConfig,
    /// Record telemetry: per-core phase spans, latency histograms and the
    /// counter snapshot on [`MulticoreOutcome::telemetry`]. Off by
    /// default — a disabled run takes no per-op clock reads and allocates
    /// nothing (the recording hooks are `Option`-gated to a no-op sink).
    /// Enabling it never perturbs results: spans are host-time-only, and
    /// every counter in the snapshot is derived from the deterministic
    /// stats the run produces anyway.
    pub telemetry: bool,
    /// Fault-injection hooks for robustness tests (DESIGN.md §14). The
    /// default plan injects nothing and costs nothing on the hot path.
    pub fault: FaultPlan,
}

/// Test/bench-only fault-injection hooks (DESIGN.md §14). A plan that
/// never fires leaves the run bit-identical to an unfaulted one; a plan
/// that fires is expected to surface as a typed [`RunError`] (kill →
/// [`WorkerPanic`], stall → [`WorkerStall`] via the watchdog).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// `Some((core, quantum))`: panic that core's worker at the start of
    /// its bound phase in that quantum — the in-process abrupt-death
    /// probe (the `crashrecovery` bench additionally does a real
    /// `kill -9` on a child process).
    pub kill_at: Option<(usize, u64)>,
    /// `Some((core, quantum, hold_ms))`: block that core's worker for
    /// `hold_ms` milliseconds at the start of its bound phase in that
    /// quantum — long enough to trip a short test watchdog, short enough
    /// that the suite never hangs (the worker wakes, observes the torn
    /// down barrier and exits cleanly).
    pub stall_at: Option<(usize, u64, u64)>,
}

impl FaultPlan {
    /// Fires this plan's hooks for `core` at `quantum` (called at the
    /// top of every bound phase, inside the worker's `catch_unwind`).
    fn fire(&self, core: usize, quantum: u64) {
        if let Some((c, q)) = self.kill_at {
            if c == core && q == quantum {
                panic!("fault injection: kill worker for core {core} at quantum {quantum}");
            }
        }
        if let Some((c, q, hold_ms)) = self.stall_at {
            if c == core && q == quantum {
                std::thread::sleep(Duration::from_millis(hold_ms));
            }
        }
    }
}

impl MulticoreConfig {
    /// The paper's Table 3 machine replicated `cores` times around a
    /// shared L2/L3, with a 10k-cycle quantum and the default runtime.
    pub fn westmere(cores: usize) -> Self {
        Self {
            cores,
            quantum: 10_000.0,
            hierarchy: HierarchyConfig::westmere(),
            coherence: CoherenceConfig::westmere(),
            core: CoreConfig::westmere(),
            runtime: RuntimeConfig::default(),
            telemetry: false,
            fault: FaultPlan::default(),
        }
    }

    /// Same machine with a workload-specific memory-level parallelism.
    pub fn with_overlap(mut self, overlap: f64) -> Self {
        self.core = self.core.with_overlap(overlap);
        self
    }

    /// Same machine with a different (fixed) quantum length.
    pub fn with_quantum(mut self, quantum: f64) -> Self {
        self.quantum = quantum;
        self
    }

    /// Same machine with adaptive quantum sizing in `[quantum/8, 16·quantum]`.
    pub fn with_adaptive_quantum(mut self) -> Self {
        self.runtime.quantum_sizing = QuantumSizing::Adaptive {
            min: self.quantum / 8.0,
            max: self.quantum * 16.0,
        };
        self
    }

    /// Same machine with a different weave-turn batching depth (`1`
    /// reproduces the strict one-transaction-per-turn weave).
    pub fn with_weave_batch(mut self, batch: u32) -> Self {
        self.runtime.weave_batch = batch;
        self
    }

    /// Same machine with the speculative (optimistic parallel) weave
    /// enabled — results stay bit-identical to the serial weave
    /// (DESIGN.md §15); only the `spec_*` counters in [`RuntimeStats`]
    /// record that speculation happened.
    pub fn with_speculative_weave(mut self) -> Self {
        self.runtime.speculative_weave = true;
        self
    }

    /// Same machine with telemetry recording switched on (spans,
    /// histograms and the counter snapshot on
    /// [`MulticoreOutcome::telemetry`]).
    pub fn with_telemetry(mut self) -> Self {
        self.telemetry = true;
        self
    }

    /// Same machine with a different bound-phase watchdog deadline
    /// (`None` disables the watchdog).
    pub fn with_watchdog(mut self, deadline: Option<Duration>) -> Self {
        self.runtime.watchdog = deadline;
        self
    }

    /// Same machine with a fault-injection plan armed.
    pub fn with_fault(mut self, fault: FaultPlan) -> Self {
        self.fault = fault;
        self
    }
}

/// Outcome of a multi-core run.
#[derive(Debug, Clone)]
pub struct MulticoreOutcome {
    /// Per-core and combined statistics (bit-identical across runs,
    /// including the [`RuntimeStats`] inside).
    pub stats: MulticoreStats,
    /// Delivered exceptions per core, in program order, capped at
    /// [`crate::engine::Engine::MAX_RECORDED_EXCEPTIONS`] per core.
    pub exceptions: Vec<Vec<CaliformsException>>,
    /// Host wall-clock per phase — scheduling-dependent by nature, so
    /// deliberately *outside* [`Self::stats`] and every bit-identity
    /// comparison.
    pub timing: RuntimeTiming,
    /// The telemetry report (spans, histograms, counter snapshot);
    /// `Some` only when [`MulticoreConfig::telemetry`] was set.
    pub telemetry: Option<TelemetryReport>,
}

/// Ops a packed shard source decodes ahead into its core-local ring.
/// 256 ops × 32 B = 8 KB: big enough to amortise refill dispatch, small
/// enough to stay resident in the host L1 alongside the decode cursor.
const SOURCE_RING: usize = 256;

/// Where a core's ops come from: a materialised shard, or a core-local
/// decoder lane over a (possibly shared) trace pack.
#[derive(Debug)]
enum ShardSource<'p> {
    /// Pre-materialised `Vec<TraceOp>` shard with a cursor.
    Slice { ops: Vec<TraceOp>, pos: usize },
    /// A decoder lane: this core decodes the pack itself (inside its own
    /// bound phase, in parallel with the other cores' lanes) and keeps
    /// the ops with global index ≡ `lane` (mod `stride`), batching them
    /// through a fixed ring. `stride == 1` consumes a whole (per-core)
    /// pack; `stride == cores` round-robin-shards one shared pack,
    /// bit-identical to [`shard_ops`].
    Pack {
        dec: PackDecoder<'p>,
        lane: u64,
        stride: u64,
        next_idx: u64,
        ring: Vec<TraceOp>,
        head: usize,
    },
}

impl ShardSource<'_> {
    /// The op at the cursor (`None` once the shard is exhausted).
    ///
    /// # Panics
    ///
    /// Panics on a corrupt pack (packs built by [`TracePack::from_ops`]
    /// or validated by [`TracePack::from_bytes`] are always well-formed).
    #[inline]
    fn peek(&mut self) -> Option<TraceOp> {
        match self {
            ShardSource::Slice { ops, pos } => ops.get(*pos).copied(),
            ShardSource::Pack {
                dec,
                lane,
                stride,
                next_idx,
                ring,
                head,
            } => {
                if *head == ring.len() {
                    refill(dec, *lane, *stride, next_idx, ring);
                    *head = 0;
                }
                ring.get(*head).copied()
            }
        }
    }

    /// Consumes the op at the cursor.
    #[inline]
    fn advance(&mut self) {
        match self {
            ShardSource::Slice { pos, .. } => *pos += 1,
            ShardSource::Pack { head, .. } => *head += 1,
        }
    }

    /// Decode progress `(ops, bytes)` of a pack lane (`None` for a
    /// materialised shard) — the `decode.*` telemetry counters.
    fn decode_progress(&self) -> Option<(u64, u64)> {
        match self {
            ShardSource::Slice { .. } => None,
            ShardSource::Pack { dec, .. } => Some((dec.ops_read(), dec.bytes_consumed())),
        }
    }
}

/// A saved [`ShardSource`] cursor — everything `peek`/`advance`/`refill`
/// mutate — so an aborted speculative epoch can rewind the stream
/// exactly (DESIGN.md §15). A slice shard needs only its position; a
/// pack lane also owns copies of the decoder cursor and the decoded
/// ring, because speculation may have refilled past the rollback point.
#[derive(Debug)]
enum ShardCursor<'p> {
    Slice {
        pos: usize,
    },
    Pack {
        dec: PackDecoder<'p>,
        next_idx: u64,
        ring: Vec<TraceOp>,
        head: usize,
    },
}

impl<'p> ShardSource<'p> {
    /// Saves the cursor for [`Self::rewind`].
    fn cursor(&self) -> ShardCursor<'p> {
        match self {
            ShardSource::Slice { pos, .. } => ShardCursor::Slice { pos: *pos },
            ShardSource::Pack {
                dec,
                next_idx,
                ring,
                head,
                ..
            } => ShardCursor::Pack {
                dec: dec.clone(),
                next_idx: *next_idx,
                ring: ring.clone(),
                head: *head,
            },
        }
    }

    /// Restores a cursor saved by [`Self::cursor`] on this same source.
    fn rewind(&mut self, cur: ShardCursor<'p>) {
        match (self, cur) {
            (ShardSource::Slice { pos, .. }, ShardCursor::Slice { pos: saved }) => *pos = saved,
            (
                ShardSource::Pack {
                    dec,
                    next_idx,
                    ring,
                    head,
                    ..
                },
                ShardCursor::Pack {
                    dec: sdec,
                    next_idx: sidx,
                    ring: sring,
                    head: shead,
                },
            ) => {
                *dec = sdec;
                *next_idx = sidx;
                *ring = sring;
                *head = shead;
            }
            _ => unreachable!("a cursor only ever rewinds the source that saved it"),
        }
    }
}

/// Refills a decoder lane's ring: decode ops, keep those on this lane
/// (global index ≡ `lane` mod `stride`). Out of line — it runs once per
/// [`SOURCE_RING`] committed ops, and keeping it out of `peek` lets the
/// per-op path inline.
#[cold]
fn refill(
    dec: &mut PackDecoder<'_>,
    lane: u64,
    stride: u64,
    next_idx: &mut u64,
    ring: &mut Vec<TraceOp>,
) {
    ring.clear();
    while ring.len() < SOURCE_RING {
        // analyze::allow(hot-path-unwrap): the pack was validated by from_bytes before replay started
        match dec.next_op().expect("validated pack is well-formed") {
            None => break,
            Some(op) => {
                if *next_idx % stride == lane {
                    ring.push(op);
                }
                *next_idx += 1;
            }
        }
    }
}

/// Per-core replay state: the shard source, the core's clock and its
/// architectural counters. Owned by exactly one worker thread during the
/// parallel phase and by the main thread during the weave.
#[derive(Debug)]
struct CoreReplay<'p> {
    id: usize,
    src: ShardSource<'p>,
    core: CoreConfig,
    l1d_latency: u32,
    mask: ExceptionMask,
    cycles: f64,
    instructions: u64,
    loads: u64,
    stores: u64,
    cforms: u64,
    stores_suppressed: u64,
    committed: u64,
    exceptions: Vec<CaliformsException>,
    pc: u64,
    /// Deterministic per-core weave counters (the per-core axis of
    /// [`WeaveBreakdown`]; bumped on the serial weave path only).
    weave: CoreWeaveStats,
}

impl<'p> CoreReplay<'p> {
    fn new(id: usize, src: ShardSource<'p>, core: CoreConfig, l1d_latency: u32) -> Self {
        Self {
            id,
            src,
            core,
            l1d_latency,
            mask: ExceptionMask::new(),
            cycles: 0.0,
            instructions: 0,
            loads: 0,
            stores: 0,
            cforms: 0,
            stores_suppressed: 0,
            committed: 0,
            exceptions: Vec::new(),
            pc: 0,
            weave: CoreWeaveStats::default(),
        }
    }

    fn done(&mut self) -> bool {
        self.src.peek().is_none()
    }

    fn account_memory(&mut self, latency: u32) {
        self.cycles += self.core.exec_cycles(1) + self.core.memory_stall(latency, self.l1d_latency);
    }

    fn deliver(&mut self, exception: Option<CaliformsException>) {
        if let Some(exc) = exception {
            if let Some(delivered) = self.mask.filter(exc) {
                if self.exceptions.len() < crate::engine::Engine::MAX_RECORDED_EXCEPTIONS {
                    self.exceptions.push(delivered);
                }
            }
        }
    }

    fn commit(&mut self, op: &TraceOp, r: MemResult) {
        match op {
            TraceOp::Load { .. } => self.loads += 1,
            TraceOp::Store { .. } => {
                self.stores += 1;
                if r.exception.is_some() {
                    self.stores_suppressed += 1;
                }
            }
            TraceOp::Cform { .. } | TraceOp::CformNt { .. } => self.cforms += 1,
            _ => {}
        }
        self.pc += 1;
        self.instructions += op.instruction_count();
        self.account_memory(r.latency);
        self.deliver(r.exception);
        self.committed += 1;
        self.src.advance();
    }

    fn commit_exec(&mut self, op: &TraceOp, cycles: f64) {
        self.pc += 1;
        self.instructions += op.instruction_count();
        self.cycles += cycles;
        self.committed += 1;
        self.src.advance();
    }

    /// Parallel ("bound") phase: replay ops the private L1 can complete
    /// until the first one needing a coherence transaction, or until
    /// `quantum_end`.
    fn run_quantum_local(&mut self, l1: &mut CoreL1, quantum_end: f64) {
        while self.cycles < quantum_end {
            let Some(op) = self.src.peek() else { return };
            // `pc + 1` mirrors the serial path, which increments before use.
            let pc = self.pc + 1;
            match op {
                TraceOp::Exec(n) => {
                    let c = self.core.exec_cycles(u64::from(n));
                    self.commit_exec(&op, c);
                }
                TraceOp::MaskPush => {
                    let c = self.core.exec_cycles(1);
                    self.commit_exec(&op, c);
                    self.mask.push_allow_all();
                }
                TraceOp::MaskPop => {
                    let c = self.core.exec_cycles(1);
                    self.commit_exec(&op, c);
                    self.mask.pop_window();
                }
                TraceOp::Load { addr, size } => match l1.try_load_quiet(addr, size as usize, pc) {
                    Some(r) => self.commit(&op, r),
                    None => return,
                },
                TraceOp::Store { addr, size } => {
                    let r =
                        with_store_data(addr, size as usize, |data| l1.try_store(addr, data, pc));
                    match r {
                        Some(r) => self.commit(&op, r),
                        None => return,
                    }
                }
                TraceOp::Cform {
                    line_addr,
                    attrs,
                    mask,
                } => {
                    let insn = CformInstruction::new(line_addr, attrs, mask);
                    match l1.try_cform(&insn, pc) {
                        Some(r) => self.commit(&op, r),
                        None => return,
                    }
                }
                // Non-temporal CFORMs operate below the L1 across every
                // core's copy: always a transaction.
                TraceOp::CformNt { .. } => return,
            }
        }
    }

    /// Saves everything the weave mutates, taken *before* a speculative
    /// epoch touches this core (DESIGN.md §15). `exceptions` needs only
    /// its length — speculation appends, never edits.
    fn snapshot(&self) -> ReplaySnapshot<'p> {
        ReplaySnapshot {
            cursor: self.src.cursor(),
            mask: self.mask.clone(),
            cycles: self.cycles,
            instructions: self.instructions,
            loads: self.loads,
            stores: self.stores,
            cforms: self.cforms,
            stores_suppressed: self.stores_suppressed,
            committed: self.committed,
            exceptions: self.exceptions.len(),
            pc: self.pc,
            weave: self.weave,
        }
    }

    /// Restores a [`Self::snapshot`] — the replay half of an aborted
    /// epoch's rollback (the L1 half is a wholesale swap-back).
    fn rewind(&mut self, snap: ReplaySnapshot<'p>) {
        self.src.rewind(snap.cursor);
        self.mask = snap.mask;
        self.cycles = snap.cycles;
        self.instructions = snap.instructions;
        self.loads = snap.loads;
        self.stores = snap.stores;
        self.cforms = snap.cforms;
        self.stores_suppressed = snap.stores_suppressed;
        self.committed = snap.committed;
        self.exceptions.truncate(snap.exceptions);
        self.pc = snap.pc;
        self.weave = snap.weave;
    }
}

/// A [`CoreReplay`] rollback point: the cursor plus every scalar the
/// weave can advance. Cheap relative to the L1 clone taken beside it.
#[derive(Debug)]
struct ReplaySnapshot<'p> {
    cursor: ShardCursor<'p>,
    mask: ExceptionMask,
    cycles: f64,
    instructions: u64,
    loads: u64,
    stores: u64,
    cforms: u64,
    stores_suppressed: u64,
    committed: u64,
    /// Recorded-exception count to truncate back to.
    exceptions: usize,
    pc: u64,
    weave: CoreWeaveStats,
}

/// Deterministically shards one op stream across `cores` shards:
/// round-robin at op granularity (op `i` goes to core `i % cores`), so
/// the same stream always produces the same shards regardless of how it
/// was stored. [`MulticoreEngine::run_pack`] applies the same assignment
/// through per-core decoder lanes without materialising the shards;
/// callers replaying a `Vec<TraceOp>` can use this directly to get
/// bit-identical multi-core results for packed and unpacked forms of the
/// same trace.
///
/// Note that `MaskPush`/`MaskPop` windows land on whichever core receives
/// them — shard-aware workloads that need a window on a specific core
/// should build per-core shards explicitly instead.
///
/// # Panics
///
/// Panics if `cores == 0`.
pub fn shard_ops<I: IntoIterator<Item = TraceOp>>(ops: I, cores: usize) -> Vec<Vec<TraceOp>> {
    assert!(cores >= 1, "need at least one core");
    let mut shards: Vec<Vec<TraceOp>> = vec![Vec::new(); cores];
    for (i, op) in ops.into_iter().enumerate() {
        shards[i % cores].push(op);
    }
    shards
}

/// State a worker owns for the duration of one bound phase: the core's
/// replay cursor and its L1, lent through the worker's mutex slot at
/// the top of each quantum and reclaimed for the weave. On telemetry
/// runs the core's span track rides along so the worker can stamp its
/// bound span itself; `track` is `None` (a no-op sink — no clock reads,
/// no writes) when telemetry is off.
#[derive(Debug)]
struct WorkerTask<'p> {
    replay: CoreReplay<'p>,
    l1: CoreL1,
    track: Option<TrackRecorder>,
    quantum: u64,
    /// This quantum's speculative-weave attempt, filled in by the worker
    /// during a [`BarrierPhase::SpecWeave`] release and consumed by the
    /// commit point (DESIGN.md §15). `None` outside speculative epochs.
    spec: Option<SpecAttempt<'p>>,
}

/// One core's finished speculative-weave attempt: the rollback state
/// taken before it ran, and — iff the whole stream executed without
/// touching another core — the claimed bank clones to install at commit.
#[derive(Debug)]
struct SpecAttempt<'p> {
    /// The core's L1 as it was before the epoch (swap back on abort).
    l1_before: CoreL1,
    /// The replay scalars/cursor as they were before the epoch.
    snap: ReplaySnapshot<'p>,
    /// `Some` iff this core ran conflict-free to quantum end (or stream
    /// exhaustion); `None` means the epoch must abort.
    outcome: Option<SpecOutcome>,
}

/// The committable product of one core's conflict-free speculative run.
#[derive(Debug)]
struct SpecOutcome {
    /// Bank index → mutated clone, for every bank this core claimed.
    /// Installed wholesale at commit; dropped on abort (the originals
    /// were never touched).
    banks: Vec<Option<(LevelBank, BankExt)>>,
    /// Batch size of each weave turn that retired transactions, in turn
    /// order — replayed into the telemetry batch-size histogram at
    /// commit, exactly as the serial weave would have recorded them.
    turn_sizes: Vec<u32>,
}

/// Claim-table word meaning "no core has claimed this bank".
const SPEC_FREE: u64 = u64::MAX;

/// Deterministic speculation backoff: after this many consecutive
/// aborted epochs, stop attempting speculation…
const SPEC_STREAK_LIMIT: u64 = 3;

/// …except every this-many quanta, to probe whether the workload's
/// sharing phase has passed. Both constants are part of the
/// deterministic schedule, so `spec_streak` is checkpointed with the
/// runtime counters.
const SPEC_RETRY_PERIOD: u64 = 64;

/// State shared between the main thread and the workers for speculative
/// weave epochs (DESIGN.md §15). Created once per run; the bank slots
/// are populated (lent from the hierarchy) only while a `SpecWeave`
/// phase is in flight, and the *originals* in them are never mutated —
/// claiming a bank hands the worker a clone.
struct SpecShared {
    /// One claim word per bank: [`SPEC_FREE`] or the claiming core.
    claims: Vec<AtomicU64>,
    /// The lent banks. A worker locks a slot only long enough to clone
    /// it, and only after winning the CAS on the matching claim word.
    banks: Vec<Mutex<Option<(LevelBank, BankExt)>>>,
    /// Raised at the first conflict (claim collision, remote sharer, or
    /// a non-speculable op); workers poll it between turns to cut the
    /// epoch short. Advisory for early exit — the commit decision
    /// re-derives abort from the per-core outcomes, which is
    /// schedule-independent (DESIGN.md §15).
    abort: AtomicBool,
    hcfg: HierarchyConfig,
    ccfg: CoherenceConfig,
    weave_batch: u32,
}

impl SpecShared {
    fn new(banks: usize, hcfg: HierarchyConfig, ccfg: CoherenceConfig, weave_batch: u32) -> Self {
        Self {
            claims: (0..banks).map(|_| AtomicU64::new(SPEC_FREE)).collect(),
            banks: (0..banks).map(|_| Mutex::new(None)).collect(),
            abort: AtomicBool::new(false),
            hcfg,
            ccfg,
            weave_batch,
        }
    }
}

/// Run-loop state restored from a checkpoint: the deterministic runtime
/// counters and the quantum clock at the boundary the checkpoint was
/// captured. Seeding these (plus the per-core replays and hierarchy)
/// makes the resumed loop continue exactly where the original left off.
#[derive(Debug, Clone, Copy)]
struct ResumeSeed {
    rt: RuntimeStats,
    quantum: f64,
    quantum_end: f64,
    /// Consecutive aborted speculative epochs at the boundary — the
    /// backoff state the attempt schedule depends on (DESIGN.md §15).
    spec_streak: u64,
}

/// A checkpoint interval (in quanta) paired with the sink each captured
/// checkpoint's bytes are handed to.
type CheckpointEvery<'a> = (u64, &'a mut dyn FnMut(Vec<u8>));

/// A panic raised on a bound-phase worker thread, surfaced by the
/// `try_run*` entry points as an error naming the offending core instead
/// of wedging the quantum barrier (the pre-fix behaviour: the panicking
/// worker never reported done, so the main thread and the surviving
/// workers hung at the barrier forever).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerPanic {
    /// Core whose replay panicked.
    pub core: usize,
    /// Best-effort panic message (`String`/`&str` payloads; a placeholder
    /// otherwise).
    pub message: String,
}

impl std::fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "worker thread for core {} panicked: {}",
            self.core, self.message
        )
    }
}

impl std::error::Error for WorkerPanic {}

/// A worker that failed to reach the quantum barrier within the
/// configured watchdog deadline ([`RuntimeConfig::watchdog`]) — the
/// stall sibling of [`WorkerPanic`]. The run is torn down cleanly: the
/// barrier is retired, surviving workers exit, and the stalled worker's
/// eventual late report is a no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerStall {
    /// First core (lowest id) that never reported done.
    pub core: usize,
    /// Phase the machine was in when the deadline expired.
    pub phase: &'static str,
    /// Quantum (0-based) whose bound phase stalled.
    pub quantum: u64,
}

impl std::fmt::Display for WorkerStall {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "worker thread for core {} stalled in the {} phase of quantum {} \
             (watchdog deadline exceeded)",
            self.core, self.phase, self.quantum
        )
    }
}

impl std::error::Error for WorkerStall {}

/// Every way a multi-core run can fail with the machine still owned by
/// the caller: a worker panicked, a worker stalled past the watchdog, or
/// (on the resume path) the checkpoint was unusable. All variants are
/// clean-teardown errors — no thread is left parked, no lock held.
#[derive(Debug)]
pub enum RunError {
    /// A core's replay panicked (bound or weave phase).
    Panic(WorkerPanic),
    /// A worker exceeded the bound-phase watchdog deadline.
    Stall(WorkerStall),
    /// The checkpoint being resumed failed to decode or did not match
    /// the pack/configuration.
    Checkpoint(CheckpointError),
}

impl RunError {
    /// The offending core, when the failure is attributable to one.
    pub fn core(&self) -> Option<usize> {
        match self {
            RunError::Panic(p) => Some(p.core),
            RunError::Stall(s) => Some(s.core),
            RunError::Checkpoint(_) => None,
        }
    }
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Panic(p) => p.fmt(f),
            RunError::Stall(s) => s.fmt(f),
            RunError::Checkpoint(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::Panic(p) => Some(p),
            RunError::Stall(s) => Some(s),
            RunError::Checkpoint(e) => Some(e),
        }
    }
}

impl From<WorkerPanic> for RunError {
    fn from(p: WorkerPanic) -> Self {
        RunError::Panic(p)
    }
}

impl From<WorkerStall> for RunError {
    fn from(s: WorkerStall) -> Self {
        RunError::Stall(s)
    }
}

impl From<CheckpointError> for RunError {
    fn from(e: CheckpointError) -> Self {
        RunError::Checkpoint(e)
    }
}

/// The cache line a weave transaction operates on — the key of its
/// directory shard (per-shard weave attribution in [`WeaveBreakdown`]).
fn txn_line_addr(op: &TraceOp) -> u64 {
    match *op {
        TraceOp::Load { addr, .. } | TraceOp::Store { addr, .. } => crate::line_base(addr),
        TraceOp::Cform { line_addr, .. } | TraceOp::CformNt { line_addr, .. } => line_addr,
        TraceOp::Exec(..) | TraceOp::MaskPush | TraceOp::MaskPop => {
            unreachable!("local ops never reach the weave transaction path")
        }
    }
}

/// Host-side telemetry state of one run: the shared clock, one span
/// track per core (lent to the worker with its task during the bound
/// phase) plus a `runtime` track for whole-machine phase spans, the
/// latency histograms, and the host-time weave breakdown accumulators.
/// Exists only when [`MulticoreConfig::telemetry`] is set — a `None`
/// run records nothing and reads no clocks.
struct RunTelemetry {
    clock: TelemetryClock,
    tracks: Vec<Option<TrackRecorder>>,
    runtime_track: TrackRecorder,
    weave_batch_sizes: LogHistogram,
    weave_turn_ns: LogHistogram,
    barrier_wait_ns: LogHistogram,
    per_core_weave_ns: Vec<u64>,
    per_quantum_weave_ns: Vec<u64>,
    quantum_samples_dropped: u64,
}

impl RunTelemetry {
    fn new(cores: usize) -> Self {
        let clock = TelemetryClock::start();
        Self {
            clock,
            tracks: (0..cores)
                .map(|c| Some(TrackRecorder::new(c as u32, clock)))
                .collect(),
            runtime_track: TrackRecorder::new(cores as u32, clock),
            weave_batch_sizes: LogHistogram::new(),
            weave_turn_ns: LogHistogram::new(),
            barrier_wait_ns: LogHistogram::new(),
            per_core_weave_ns: vec![0; cores],
            per_quantum_weave_ns: Vec::new(),
            quantum_samples_dropped: 0,
        }
    }

    /// Caps the per-quantum weave samples at
    /// [`WeaveTimingBreakdown::MAX_QUANTUM_SAMPLES`], counting drops.
    fn push_quantum_weave(&mut self, ns: u64) {
        if self.per_quantum_weave_ns.len() < WeaveTimingBreakdown::MAX_QUANTUM_SAMPLES {
            self.per_quantum_weave_ns.push(ns);
        } else {
            self.quantum_samples_dropped += 1;
        }
    }
}

/// Extracts a displayable message from a caught panic payload.
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        // analyze::allow(hot-path-alloc): panic path: the worker is already down, steady-state never runs this
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        // analyze::allow(hot-path-alloc): panic path: the worker is already down, steady-state never runs this
        "non-string panic payload".to_string()
    }
}

/// Runs one core's bound phase under `catch_unwind`, recording any panic
/// in `panics` under `core` — shared by the worker loop and the inline
/// single-core path so the two cannot drift.
fn run_task_caught(
    core: usize,
    task: &mut WorkerTask<'_>,
    quantum_end: f64,
    panics: &Mutex<Vec<WorkerPanic>>,
    fault: &FaultPlan,
) {
    let committed_before = task.replay.committed;
    let span_start = task.track.as_ref().map(TrackRecorder::start);
    let quantum = task.quantum;
    let result = catch_unwind(AssertUnwindSafe(|| {
        fault.fire(core, quantum);
        task.replay.run_quantum_local(&mut task.l1, quantum_end);
    }));
    if let (Some(track), Some(start)) = (task.track.as_mut(), span_start) {
        // Only quanta in which the core actually replayed something get a
        // bound span — an exhausted core's empty wake-ups would otherwise
        // bury the timeline in zero-length slices.
        if task.replay.committed != committed_before {
            track.record_since(Phase::Bound, task.quantum, start);
        }
    }
    if let Err(payload) = result {
        // `lock_recover`: even if the log mutex was poisoned by an
        // earlier panic, this panic must still be recorded — nesting a
        // "panic log poisoned" panic here would unwind past the barrier
        // notification below and wedge the run.
        lock_recover(panics).push(WorkerPanic {
            core,
            message: panic_message(payload.as_ref()),
        });
    }
}

/// Dispatches one speculative coherence transaction through the worker's
/// private execution context — the [`MulticoreEngine::execute_op`]
/// mirror. `None` aborts the epoch: the op needs another core's state
/// (or, for CFORM-NT, every core's), which speculation cannot provide.
fn spec_execute_op<F: FnMut(usize) -> Option<(LevelBank, BankExt)>>(
    exec: &mut SpecExec<'_, F>,
    op: TraceOp,
    pc: u64,
) -> Option<MemResult> {
    match op {
        TraceOp::Load { addr, size } => exec.load_quiet(addr, size as usize, pc),
        TraceOp::Store { addr, size } => {
            with_store_data(addr, size as usize, |data| exec.store(addr, data, pc))
        }
        TraceOp::Cform {
            line_addr,
            attrs,
            mask,
        } => {
            let insn = CformInstruction::new(line_addr, attrs, mask);
            exec.cform(&insn, pc)
        }
        // Non-temporal CFORMs invalidate every core's copy below the
        // L1s: inherently cross-core, never speculable.
        TraceOp::CformNt { .. } => None,
        TraceOp::Exec(..) | TraceOp::MaskPush | TraceOp::MaskPop => {
            unreachable!("local ops are consumed by the fast path")
        }
    }
}

/// One core's whole speculative weave for the epoch: the exact
/// [`MulticoreEngine::weave_turn`] loop, run against the core's own L1
/// and clones of CAS-claimed banks instead of the shared machine.
/// Returns `Some` iff every transaction completed privately — in which
/// case the core sits at quantum end (or stream exhaustion) with
/// exactly the state and counters the serial weave would have produced,
/// because with zero cross-core involvement the serial round-robin
/// cannot interleave anything between this core's turns that affects it
/// (DESIGN.md §15 has the argument). Any conflict returns `None` and
/// raises the shared abort flag.
fn spec_run<'p>(
    core: usize,
    task: &mut WorkerTask<'p>,
    quantum_end: f64,
    spec: &SpecShared,
) -> Option<SpecOutcome> {
    let claims = &spec.claims;
    let bank_slots = &spec.banks;
    let abort = &spec.abort;
    let mut exec = SpecExec::new(
        &spec.hcfg,
        &spec.ccfg,
        core,
        claims.len(),
        &mut task.l1,
        |b| {
            match claims[b].compare_exchange(
                SPEC_FREE,
                core as u64,
                // analyze::order(AcqRel: a winning claim acquires the bank slot published by the pre-release Relaxed stores (ordered by the barrier release) and publishes the claim to every later CAS; loser sees it via the failure Acquire)
                Ordering::AcqRel,
                // analyze::order(Acquire: a failed CAS only needs to observe that some claim exists; the epoch aborts either way)
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    let g = lock_recover(&bank_slots[b]);
                    // Clone, never take: the original must survive the
                    // epoch untouched so an abort has nothing to undo.
                    // analyze::allow(hot-path-unwrap): the commit point lends every bank before releasing SpecWeave, and a panic here is confined by spec_task_caught's catch_unwind — the epoch aborts and rolls back
                    Some(g.as_ref().expect("bank lent for the epoch").clone())
                }
                Err(_) => {
                    // analyze::order(Release: abort is a false→true latch; pairs with the Acquire polls in spec_run — a late observer merely aborts a turn later, and the commit point re-reads it after the barrier)
                    abort.store(true, Ordering::Release);
                    None
                }
            }
        },
    );
    let replay = &mut task.replay;
    let batch = spec.weave_batch;
    // analyze::allow(hot-path-alloc): Vec::new() is capacity 0 and never allocates; growth is once per weave turn, not per op
    let mut turn_sizes = Vec::new();
    // The serial weave loop, collapsed to this core: round-robin turns
    // of a conflict-free epoch never interact, so running this core's
    // turns back-to-back retires the same transactions with the same
    // counters. Mirror `weave_turn` statement for statement below.
    loop {
        // analyze::order(Acquire: pairs with the Release abort stores; seeing the latch late only delays the abort to the commit point, which decides after the barrier)
        if abort.load(Ordering::Acquire) {
            return None;
        }
        if replay.cycles >= quantum_end || replay.done() {
            break;
        }
        let committed_before = replay.committed;
        replay.run_quantum_local(exec.l1, quantum_end);
        let mut progressed = replay.committed != committed_before;
        let mut txns = 0u32;
        while txns < batch && replay.cycles < quantum_end {
            let Some(op) = replay.src.peek() else { break };
            let pc = replay.pc + 1;
            let Some(r) = spec_execute_op(&mut exec, op, pc) else {
                // analyze::order(Release: same false→true abort latch; exact propagation timing is irrelevant to the commit decision)
                abort.store(true, Ordering::Release);
                return None;
            };
            replay.commit(&op, r);
            progressed = true;
            txns += 1;
            replay.weave.transactions += 1;
            let batched = txns > 1;
            if batched {
                replay.weave.batched += 1;
            }
            // `contended` is impossible here: remote involvement aborted
            // inside `spec_execute_op` before the transaction committed.
            exec.note_weave_txn(txn_line_addr(&op), batched);
            replay.run_quantum_local(exec.l1, quantum_end);
        }
        if progressed {
            replay.weave.turns += 1;
        }
        if txns > 0 {
            turn_sizes.push(txns);
        }
        if !progressed {
            break;
        }
    }
    Some(SpecOutcome {
        banks: exec.into_claimed(),
        turn_sizes,
    })
}

/// Runs one core's speculative epoch under `catch_unwind`, recording the
/// rollback state first so the commit point can always restore the
/// pre-epoch machine. A panic inside speculation is *not* pushed to the
/// panic log: the epoch aborts, the rollback undoes every effect, and if
/// the panic was a genuine engine fault the serial residue re-executes
/// the same op and surfaces it through the weave's own catch.
fn spec_task_caught(core: usize, task: &mut WorkerTask<'_>, quantum_end: f64, spec: &SpecShared) {
    let l1_before = task.l1.clone();
    let snap = task.replay.snapshot();
    let result = catch_unwind(AssertUnwindSafe(|| spec_run(core, task, quantum_end, spec)));
    let outcome = match result {
        Ok(outcome) => outcome,
        Err(_) => {
            // analyze::order(Release: abort latch on the panic path; the barrier's done handshake orders it before the commit point's read in any case)
            spec.abort.store(true, Ordering::Release);
            None
        }
    };
    task.spec = Some(SpecAttempt {
        l1_before,
        snap,
        outcome,
    });
}

/// The persistent bound-phase worker loop: park at the barrier, run the
/// lent task for the released quantum (up to the first op needing a
/// coherence transaction), report done; repeat until stopped.
///
/// The task is *taken out of* the slot while it runs so a panic inside
/// the replay cannot poison the slot mutex; the panic is caught, recorded
/// in `panics` under this worker's core id, and the barrier is still
/// notified — the main thread aborts the run with an `Err` instead of
/// waiting forever for a completion that will never come.
fn worker_loop(
    core: usize,
    barrier: &QuantumBarrier,
    slot: &Mutex<Option<WorkerTask<'_>>>,
    panics: &Mutex<Vec<WorkerPanic>>,
    fault: &FaultPlan,
    spec: &SpecShared,
) {
    let mut seen = 0u64;
    while let Some((quantum_end, phase)) = barrier.wait_for_phase(&mut seen) {
        // `lock_recover` throughout: a poisoned slot means another thread
        // panicked mid-handoff; that root cause is (or is about to be)
        // recorded in the panic log and surfaced as a `WorkerPanic`, and
        // a nested "worker slot poisoned" panic here would skip the
        // `worker_done` below and hang the barrier forever.
        let task = lock_recover(slot).take();
        if let Some(mut task) = task {
            match phase {
                BarrierPhase::Bound => {
                    run_task_caught(core, &mut task, quantum_end, panics, fault);
                }
                BarrierPhase::SpecWeave => {
                    spec_task_caught(core, &mut task, quantum_end, spec);
                }
            }
            // Put the task back even after a panic (its state may be
            // mid-op, but the run is about to abort and only needs the
            // pieces accounted for).
            *lock_recover(slot) = Some(task);
        }
        barrier.worker_done(core);
    }
}

/// Replays per-core trace shards over a [`CoherentHierarchy`] with a
/// cycle-quantum barrier, on a persistent worker pool.
#[derive(Debug)]
pub struct MulticoreEngine {
    /// The coherent hierarchy (public: attack simulations inspect it).
    pub hierarchy: CoherentHierarchy,
    cfg: MulticoreConfig,
}

impl MulticoreEngine {
    /// Builds an engine; shards are supplied to [`Self::run`],
    /// [`Self::run_pack`] or [`Self::run_packs`].
    ///
    /// # Panics
    ///
    /// Panics if `cfg.cores == 0`, `cfg.quantum` is not a positive finite
    /// cycle count, `cfg.runtime.weave_batch == 0`, or an adaptive
    /// quantum range is invalid (`0 < min ≤ quantum ≤ max`, all finite).
    pub fn new(cfg: MulticoreConfig) -> Self {
        assert!(cfg.cores >= 1, "need at least one core");
        assert!(
            cfg.quantum.is_finite() && cfg.quantum > 0.0,
            "quantum must be a positive cycle count"
        );
        assert!(cfg.runtime.weave_batch >= 1, "weave batch must be ≥ 1");
        if let QuantumSizing::Adaptive { min, max } = cfg.runtime.quantum_sizing {
            assert!(
                min.is_finite()
                    && max.is_finite()
                    && min > 0.0
                    && min <= cfg.quantum
                    && cfg.quantum <= max,
                "adaptive quantum range must satisfy 0 < min ≤ quantum ≤ max"
            );
        }
        Self {
            hierarchy: CoherentHierarchy::new(cfg.hierarchy, cfg.coherence, cfg.cores),
            cfg,
        }
    }

    /// Executes one coherence-needing op for core `c` through the full
    /// hierarchy — the weave's transaction dispatch.
    fn execute_op(&mut self, c: usize, op: TraceOp, pc: u64) -> MemResult {
        match op {
            TraceOp::Load { addr, size } => self.hierarchy.load_quiet(c, addr, size as usize, pc),
            TraceOp::Store { addr, size } => with_store_data(addr, size as usize, |data| {
                self.hierarchy.store(c, addr, data, pc)
            }),
            TraceOp::Cform {
                line_addr,
                attrs,
                mask,
            } => {
                let insn = CformInstruction::new(line_addr, attrs, mask);
                self.hierarchy.cform(c, &insn, pc)
            }
            TraceOp::CformNt {
                line_addr,
                attrs,
                mask,
            } => {
                let insn = CformInstruction::new(line_addr, attrs, mask);
                self.hierarchy.cform_nt(c, &insn, pc)
            }
            TraceOp::Exec(..) | TraceOp::MaskPush | TraceOp::MaskPop => {
                unreachable!("local ops are consumed by the fast path")
            }
        }
    }

    /// Serial ("weave") phase turn for one core: resume local-completable
    /// ops through the same fast path the parallel phase uses, then
    /// execute up to [`RuntimeConfig::weave_batch`] coherence
    /// transactions through the full MESI machinery. A transaction that
    /// involved another core (observable as an invalidation or
    /// cache-to-cache transfer) always ends the turn, so intra-quantum
    /// line ping-pong keeps its transaction-granular round-robin
    /// interleave while runs of private misses cost one turn. Returns
    /// whether any op ran.
    fn weave_turn(
        &mut self,
        core: &mut CoreReplay<'_>,
        quantum_end: f64,
        rt: &mut RuntimeStats,
        batch_sizes: Option<&mut LogHistogram>,
    ) -> bool {
        if core.cycles >= quantum_end || core.done() {
            return false;
        }
        let committed_before = core.committed;
        core.run_quantum_local(self.hierarchy.l1_mut(core.id), quantum_end);
        let mut progressed = core.committed != committed_before;
        let batch = self.cfg.runtime.weave_batch;
        let mut txns = 0u32;
        while txns < batch && core.cycles < quantum_end {
            // The op at the cursor (if any) needs the coherence machinery.
            let Some(op) = core.src.peek() else { break };
            let pc = core.pc + 1;
            let events_before = self.hierarchy.cross_core_events();
            let r = self.execute_op(core.id, op, pc);
            core.commit(&op, r);
            progressed = true;
            txns += 1;
            rt.weave_transactions += 1;
            core.weave.transactions += 1;
            let batched = txns > 1;
            if batched {
                rt.batched_transactions += 1;
                core.weave.batched += 1;
            }
            let contended = self.hierarchy.cross_core_events() != events_before;
            if contended {
                rt.contended_transactions += 1;
                core.weave.contended += 1;
            }
            self.hierarchy
                .note_weave_txn(txn_line_addr(&op), batched, contended);
            if contended {
                break;
            }
            core.run_quantum_local(self.hierarchy.l1_mut(core.id), quantum_end);
        }
        if progressed {
            rt.weave_turns += 1;
            core.weave.turns += 1;
        }
        if txns > 0 {
            if let Some(h) = batch_sizes {
                h.record(u64::from(txns));
            }
        }
        progressed
    }

    /// Runs one trace shard per core to completion.
    ///
    /// # Panics
    ///
    /// Panics unless `shards.len()` equals the configured core count, or
    /// (on the main thread, with a [`WorkerPanic`] message) if a worker
    /// panicked — use [`Self::try_run`] to handle that as an error.
    pub fn run(self, shards: Vec<Vec<TraceOp>>) -> MulticoreOutcome {
        self.try_run(shards).unwrap_or_else(|p| panic!("{p}"))
    }

    /// Like [`Self::run`], but a panic on a worker thread is surfaced as
    /// an `Err` naming the offending core instead of wedging the quantum
    /// barrier (or re-panicking).
    ///
    /// # Errors
    ///
    /// [`RunError::Panic`] if a core's replay panicked;
    /// [`RunError::Stall`] if a worker exceeded the watchdog deadline.
    ///
    /// # Panics
    ///
    /// Panics unless `shards.len()` equals the configured core count.
    pub fn try_run(self, shards: Vec<Vec<TraceOp>>) -> Result<MulticoreOutcome, RunError> {
        assert_eq!(
            shards.len(),
            self.cfg.cores,
            "one shard per configured core"
        );
        let sources = shards
            .into_iter()
            .map(|ops| ShardSource::Slice { ops, pos: 0 })
            .collect();
        self.run_sources(sources).map(|(outcome, _)| outcome)
    }

    /// Replays a single packed trace, sharding it across the configured
    /// cores with the deterministic round-robin of [`shard_ops`] — but
    /// without materialising the shards: every worker owns a
    /// [`PackDecoder`] lane over the same pack and decodes in parallel
    /// inside its bound phase, through a fixed core-local ring.
    /// Bit-identical in stats and exceptions to
    /// `self.run(shard_ops(pack.iter(), cores))`.
    ///
    /// # Panics
    ///
    /// Panics on a corrupt pack (packs built by [`TracePack::from_ops`]
    /// or validated by [`TracePack::from_bytes`] are always well-formed),
    /// or with a [`WorkerPanic`] message if a worker panicked.
    pub fn run_pack(self, pack: &TracePack) -> MulticoreOutcome {
        self.try_run_pack(pack).unwrap_or_else(|p| panic!("{p}"))
    }

    /// Like [`Self::run_pack`], but a worker-thread panic is surfaced as
    /// an `Err` naming the offending core.
    ///
    /// # Errors
    ///
    /// [`RunError::Panic`] if a core's replay panicked;
    /// [`RunError::Stall`] if a worker exceeded the watchdog deadline.
    pub fn try_run_pack(self, pack: &TracePack) -> Result<MulticoreOutcome, RunError> {
        self.try_run_pack_with_state(pack)
            .map(|(outcome, _)| outcome)
    }

    /// [`Self::try_run_pack`] that additionally hands back the final
    /// [`CoherentHierarchy`], so callers (the `califorms-oracle`
    /// differential harness) can diff the machine's final memory and
    /// blacklist state byte-for-byte against a reference model.
    ///
    /// # Errors
    ///
    /// [`RunError::Panic`] if a core's replay panicked;
    /// [`RunError::Stall`] if a worker exceeded the watchdog deadline.
    pub fn try_run_pack_with_state(
        self,
        pack: &TracePack,
    ) -> Result<(MulticoreOutcome, CoherentHierarchy), RunError> {
        let sources = Self::pack_lanes(pack, self.cfg.cores);
        self.run_sources(sources)
    }

    /// One decoder lane per core over a shared pack (round-robin
    /// sharding, `stride == cores`).
    fn pack_lanes(pack: &TracePack, cores: usize) -> Vec<ShardSource<'_>> {
        let stride = cores as u64;
        (0..stride)
            .map(|lane| ShardSource::Pack {
                dec: pack.decoder(),
                lane,
                stride,
                next_idx: 0,
                ring: Vec::with_capacity(SOURCE_RING),
                head: 0,
            })
            .collect()
    }

    /// [`Self::try_run_pack`] with crash tolerance: a checkpoint of the
    /// whole machine is captured at every `interval_quanta`-th quantum
    /// boundary (the single-threaded post-weave point — every worker has
    /// quiesced, the drain protocol model-checked in `califorms-analyze`)
    /// and returned alongside the outcome, in capture order. Any of them
    /// can be handed to [`Self::try_resume_pack`] to reproduce the rest
    /// of the run bit-identically.
    ///
    /// # Errors
    ///
    /// [`RunError::Panic`] / [`RunError::Stall`] as for
    /// [`Self::try_run_pack`].
    ///
    /// # Panics
    ///
    /// Panics if `interval_quanta == 0`.
    pub fn try_run_pack_checkpointed(
        self,
        pack: &TracePack,
        interval_quanta: u64,
    ) -> Result<(MulticoreOutcome, Vec<Vec<u8>>), RunError> {
        let mut checkpoints = Vec::new();
        let outcome =
            self.try_run_pack_checkpointed_with(pack, interval_quanta, |b| checkpoints.push(b))?;
        Ok((outcome, checkpoints))
    }

    /// [`Self::try_run_pack_checkpointed`] with streaming delivery:
    /// `sink` receives each checkpoint the moment it is captured, so a
    /// crash-tolerant driver can persist them mid-run instead of
    /// waiting for completion (the `crashrecovery` bench does exactly
    /// this before its child process is killed).
    ///
    /// # Errors
    ///
    /// As for [`Self::try_run_pack_checkpointed`].
    ///
    /// # Panics
    ///
    /// Panics if `interval_quanta == 0`.
    pub fn try_run_pack_checkpointed_with(
        self,
        pack: &TracePack,
        interval_quanta: u64,
        mut sink: impl FnMut(Vec<u8>),
    ) -> Result<MulticoreOutcome, RunError> {
        assert!(interval_quanta >= 1, "checkpoint interval must be ≥ 1");
        let sources = Self::pack_lanes(pack, self.cfg.cores);
        let replays = self.seed_replays(sources);
        self.run_loop(replays, None, Some((interval_quanta, &mut sink)))
            .map(|(outcome, _)| outcome)
    }

    /// Resumes a run of `pack` from a checkpoint produced by
    /// [`Self::try_run_pack_checkpointed`], reconstructing the entire
    /// machine (configuration included) from the checkpoint bytes and
    /// continuing to completion. The outcome is bit-identical to the
    /// tail of a straight-through run — stats, exceptions, runtime and
    /// weave counters all match (host [`RuntimeTiming`] and telemetry
    /// excluded; they restart at the resume point).
    ///
    /// # Errors
    ///
    /// [`RunError::Checkpoint`] if the bytes fail to decode, were taken
    /// by the single-core engine, or do not fit `pack`;
    /// [`RunError::Panic`] / [`RunError::Stall`] if the resumed run
    /// itself fails.
    pub fn try_resume_pack(pack: &TracePack, bytes: &[u8]) -> Result<MulticoreOutcome, RunError> {
        let (engine, replays, seed) = Self::restore(pack, bytes)?;
        engine
            .run_loop(replays, Some(seed), None)
            .map(|(outcome, _)| outcome)
    }

    /// [`Self::try_resume_pack`] that keeps checkpointing while it
    /// runs: the resumed run again emits a checkpoint to `sink` every
    /// `interval_quanta` boundaries (counted from the run's start, so
    /// the cadence matches the original run's). This is what lets the
    /// retry-with-backoff driver survive repeated failures — every
    /// recovery attempt refreshes its fallback point.
    ///
    /// # Errors
    ///
    /// As for [`Self::try_resume_pack`].
    ///
    /// # Panics
    ///
    /// Panics if `interval_quanta == 0`.
    pub fn try_resume_pack_checkpointed_with(
        pack: &TracePack,
        bytes: &[u8],
        interval_quanta: u64,
        mut sink: impl FnMut(Vec<u8>),
    ) -> Result<MulticoreOutcome, RunError> {
        assert!(interval_quanta >= 1, "checkpoint interval must be ≥ 1");
        let (engine, replays, seed) = Self::restore(pack, bytes)?;
        engine
            .run_loop(replays, Some(seed), Some((interval_quanta, &mut sink)))
            .map(|(outcome, _)| outcome)
    }

    /// Replays one pre-encoded pack per core (e.g. from
    /// `MtWorkload::to_packs`), each decoded by its own worker inside the
    /// bound phase. Bit-identical in stats and exceptions to
    /// `self.run(packs.iter().map(|p| p.to_vec()).collect())`.
    ///
    /// # Panics
    ///
    /// Panics unless `packs.len()` equals the configured core count, on
    /// a corrupt pack, or with a [`WorkerPanic`] message if a worker
    /// panicked.
    pub fn run_packs(self, packs: &[TracePack]) -> MulticoreOutcome {
        self.try_run_packs(packs).unwrap_or_else(|p| panic!("{p}"))
    }

    /// Like [`Self::run_packs`], but a worker-thread panic is surfaced as
    /// an `Err` naming the offending core.
    ///
    /// # Errors
    ///
    /// [`RunError::Panic`] if a core's replay panicked;
    /// [`RunError::Stall`] if a worker exceeded the watchdog deadline.
    ///
    /// # Panics
    ///
    /// Panics unless `packs.len()` equals the configured core count.
    pub fn try_run_packs(self, packs: &[TracePack]) -> Result<MulticoreOutcome, RunError> {
        assert_eq!(packs.len(), self.cfg.cores, "one pack per configured core");
        let sources = packs
            .iter()
            .map(|pack| ShardSource::Pack {
                dec: pack.decoder(),
                lane: 0,
                stride: 1,
                next_idx: 0,
                ring: Vec::with_capacity(SOURCE_RING),
                head: 0,
            })
            .collect();
        self.run_sources(sources).map(|(outcome, _)| outcome)
    }

    /// Builds the per-core replay states for a fresh (unseeded) run.
    fn seed_replays<'p>(&self, sources: Vec<ShardSource<'p>>) -> Vec<Option<CoreReplay<'p>>> {
        let l1d_latency = self.cfg.hierarchy.l1d_latency;
        let core_cfg = self.cfg.core;
        sources
            .into_iter()
            .enumerate()
            .map(|(id, src)| Some(CoreReplay::new(id, src, core_cfg, l1d_latency)))
            .collect()
    }

    /// Serializes the whole machine — configuration, per-core
    /// architectural state, coherent hierarchy, runtime counters and
    /// every decoder lane's cursor — into a self-contained checkpoint.
    /// Called only at the single-threaded post-weave point, where every
    /// worker has quiesced and each `replays` slot holds its core.
    fn capture_checkpoint(
        &self,
        replays: &[Option<CoreReplay<'_>>],
        rt: &RuntimeStats,
        quantum: f64,
        quantum_end: f64,
        spec_streak: u64,
    ) -> Vec<u8> {
        let mut w = ck::Wr::checkpoint();

        let s = w.begin_section(ck::SEC_META);
        w.u8(ck::KIND_MULTI);
        w.u64(self.cfg.cores as u64);
        w.end_section(s);

        let s = w.begin_section(ck::SEC_CONFIG);
        ck::put_hier_config(&mut w, &self.cfg.hierarchy);
        ck::put_core_config(&mut w, &self.cfg.core);
        w.u32(self.cfg.coherence.directory_latency);
        w.u32(self.cfg.coherence.cache_to_cache_latency);
        w.u32(self.cfg.coherence.upgrade_latency);
        match self.cfg.runtime.quantum_sizing {
            QuantumSizing::Fixed => w.u8(0),
            QuantumSizing::Adaptive { min, max } => {
                w.u8(1);
                w.f64(min);
                w.f64(max);
            }
        }
        w.u32(self.cfg.runtime.weave_batch);
        w.f64(self.cfg.quantum);
        // Speculative-weave tail (readers treat absence as `false`, so
        // pre-§15 checkpoints stay resumable without a version bump).
        w.bool(self.cfg.runtime.speculative_weave);
        w.end_section(s);

        let s = w.begin_section(ck::SEC_CORE);
        w.u64(replays.len() as u64);
        for slot in replays {
            let c = slot.as_ref().expect("replay present at a quantum boundary");
            w.u64(c.pc);
            w.f64(c.cycles);
            w.u64(c.instructions);
            w.u64(c.loads);
            w.u64(c.stores);
            w.u64(c.cforms);
            w.u64(c.stores_suppressed);
            w.u64(c.committed);
            ck::put_mask(&mut w, &c.mask);
            ck::put_exceptions(&mut w, &c.exceptions);
            ck::put_core_weave(&mut w, &c.weave);
        }
        w.end_section(s);

        let s = w.begin_section(ck::SEC_COHERENT);
        self.hierarchy.save_state(&mut w);
        w.end_section(s);

        let s = w.begin_section(ck::SEC_RUNTIME);
        w.u64(rt.quanta);
        w.u64(rt.barrier_waits);
        w.u64(rt.weave_turns);
        w.u64(rt.weave_transactions);
        w.u64(rt.batched_transactions);
        w.u64(rt.contended_transactions);
        w.f64(quantum);
        w.f64(quantum_end);
        // Speculative-weave tail: the epoch counters plus the backoff
        // streak (absent in pre-§15 checkpoints ⇒ all zero on restore).
        w.u64(rt.spec_epochs);
        w.u64(rt.spec_commits);
        w.u64(rt.spec_aborts);
        w.u64(rt.spec_residue_transactions);
        w.u64(spec_streak);
        w.end_section(s);

        let s = w.begin_section(ck::SEC_CURSOR);
        w.u64(replays.len() as u64);
        for slot in replays {
            let c = slot.as_ref().expect("replay present at a quantum boundary");
            match &c.src {
                ShardSource::Pack {
                    dec,
                    lane,
                    stride,
                    next_idx,
                    ring,
                    head,
                } => {
                    ck::put_resume_point(&mut w, &dec.resume_point());
                    w.u64(*lane);
                    w.u64(*stride);
                    w.u64(*next_idx);
                    // Decoded-but-uncommitted ops: the ring tail survives
                    // the seam verbatim so the resumed lane replays the
                    // exact op sequence.
                    let leftover = &ring[*head..];
                    w.u64(leftover.len() as u64);
                    for op in leftover {
                        ck::put_trace_op(&mut w, op);
                    }
                }
                ShardSource::Slice { .. } => {
                    unreachable!("checkpointed runs always replay pack lanes")
                }
            }
        }
        w.end_section(s);

        w.finish()
    }

    /// Rebuilds the engine, per-core replays and run-loop seed from a
    /// checkpoint captured by [`Self::capture_checkpoint`] against
    /// `pack`. Every field is validated *before* it reaches a
    /// constructor that would assert on it — corrupt bytes must surface
    /// as a typed [`CheckpointError`], never a panic.
    fn restore<'p>(
        pack: &'p TracePack,
        bytes: &[u8],
    ) -> ck::Result<(Self, Vec<Option<CoreReplay<'p>>>, ResumeSeed)> {
        let sections = ck::parse_sections(bytes)?;

        let mut r = ck::require(&sections, ck::SEC_META, "meta")?;
        match r.u8()? {
            ck::KIND_MULTI => {}
            ck::KIND_SINGLE => {
                return Err(CheckpointError::ConfigMismatch(
                    "single-core checkpoint resumed on the multicore engine",
                ))
            }
            _ => return Err(CheckpointError::Corrupt("unknown engine kind")),
        }
        let cores = r.u64()?;
        if !(1..=64).contains(&cores) {
            return Err(CheckpointError::Corrupt("core count outside 1..=64"));
        }
        let cores = cores as usize;
        ck::consumed(&r, ck::SEC_META)?;

        let mut r = ck::require(&sections, ck::SEC_CONFIG, "configuration")?;
        let hierarchy = ck::get_hier_config(&mut r)?;
        let core = ck::get_core_config(&mut r)?;
        let coherence = CoherenceConfig {
            directory_latency: r.u32()?,
            cache_to_cache_latency: r.u32()?,
            upgrade_latency: r.u32()?,
        };
        let quantum_sizing = match r.u8()? {
            0 => QuantumSizing::Fixed,
            1 => QuantumSizing::Adaptive {
                min: r.f64()?,
                max: r.f64()?,
            },
            _ => return Err(CheckpointError::Corrupt("unknown quantum sizing tag")),
        };
        let weave_batch = r.u32()?;
        let quantum0 = r.f64()?;
        // Optional speculative-weave tail (absent in pre-§15 checkpoints).
        let speculative_weave = if r.remaining() > 0 { r.bool()? } else { false };
        ck::consumed(&r, ck::SEC_CONFIG)?;
        if weave_batch == 0 {
            return Err(CheckpointError::Corrupt("weave batch of zero"));
        }
        if !quantum0.is_finite() || quantum0 <= 0.0 {
            return Err(CheckpointError::Corrupt(
                "quantum is not a positive cycle count",
            ));
        }
        if let QuantumSizing::Adaptive { min, max } = quantum_sizing {
            if !min.is_finite()
                || !max.is_finite()
                || min <= 0.0
                || min > quantum0
                || quantum0 > max
            {
                return Err(CheckpointError::Corrupt(
                    "adaptive quantum range is invalid",
                ));
            }
        }

        let mut r = ck::require(&sections, ck::SEC_RUNTIME, "runtime counters")?;
        let mut rt = RuntimeStats {
            quanta: r.u64()?,
            barrier_waits: r.u64()?,
            weave_turns: r.u64()?,
            weave_transactions: r.u64()?,
            batched_transactions: r.u64()?,
            contended_transactions: r.u64()?,
            spec_epochs: 0,
            spec_commits: 0,
            spec_aborts: 0,
            spec_residue_transactions: 0,
        };
        let quantum = r.f64()?;
        let quantum_end = r.f64()?;
        // Optional speculative-weave tail (absent in pre-§15 checkpoints).
        let mut spec_streak = 0u64;
        if r.remaining() > 0 {
            rt.spec_epochs = r.u64()?;
            rt.spec_commits = r.u64()?;
            rt.spec_aborts = r.u64()?;
            rt.spec_residue_transactions = r.u64()?;
            spec_streak = r.u64()?;
            if rt.spec_epochs != rt.spec_commits + rt.spec_aborts {
                return Err(CheckpointError::Corrupt(
                    "speculative epoch counters are inconsistent",
                ));
            }
        }
        ck::consumed(&r, ck::SEC_RUNTIME)?;
        if !quantum.is_finite() || quantum <= 0.0 || !quantum_end.is_finite() || quantum_end <= 0.0
        {
            return Err(CheckpointError::Corrupt("runtime quantum clock is invalid"));
        }
        match quantum_sizing {
            QuantumSizing::Fixed if quantum != quantum0 => {
                return Err(CheckpointError::Corrupt(
                    "fixed-sizing run drifted from its quantum",
                ));
            }
            QuantumSizing::Adaptive { min, max } if !(min..=max).contains(&quantum) => {
                return Err(CheckpointError::Corrupt(
                    "adaptive quantum outside its range",
                ));
            }
            _ => {}
        }

        // Lanes before cores: replays are built around their sources.
        let mut r = ck::require(&sections, ck::SEC_CURSOR, "replay cursor")?;
        if r.count()? != cores {
            return Err(CheckpointError::ConfigMismatch("cursor lane count"));
        }
        let mut sources = Vec::with_capacity(cores);
        for lane_idx in 0..cores {
            let point = ck::get_resume_point(&mut r)?;
            let lane = r.u64()?;
            let stride = r.u64()?;
            let next_idx = r.u64()?;
            if lane != lane_idx as u64 || stride != cores as u64 {
                return Err(CheckpointError::Corrupt(
                    "cursor lane/stride inconsistent with the core count",
                ));
            }
            if next_idx != point.ops_read {
                return Err(CheckpointError::Corrupt(
                    "cursor lane index out of sync with its decoder",
                ));
            }
            let n = r.count()?;
            let mut ring = Vec::with_capacity(SOURCE_RING.max(n));
            for _ in 0..n {
                ring.push(ck::get_trace_op(&mut r)?);
            }
            // `resume_from` re-validates the byte offset against this
            // pack, so a checkpoint from a different (shorter) pack
            // fails typed instead of decoding garbage.
            let dec = pack.resume_from(point)?;
            sources.push(ShardSource::Pack {
                dec,
                lane,
                stride,
                next_idx,
                ring,
                head: 0,
            });
        }
        ck::consumed(&r, ck::SEC_CURSOR)?;

        let mut r = ck::require(&sections, ck::SEC_CORE, "per-core state")?;
        if r.count()? != cores {
            return Err(CheckpointError::ConfigMismatch("per-core state count"));
        }
        let l1d_latency = hierarchy.l1d_latency;
        let mut replays = Vec::with_capacity(cores);
        for (id, src) in sources.into_iter().enumerate() {
            let mut c = CoreReplay::new(id, src, core, l1d_latency);
            c.pc = r.u64()?;
            c.cycles = r.f64()?;
            c.instructions = r.u64()?;
            c.loads = r.u64()?;
            c.stores = r.u64()?;
            c.cforms = r.u64()?;
            c.stores_suppressed = r.u64()?;
            c.committed = r.u64()?;
            c.mask = ck::get_mask(&mut r)?;
            c.exceptions = ck::get_exceptions(&mut r)?;
            c.weave = ck::get_core_weave(&mut r)?;
            if !c.cycles.is_finite() || c.cycles < 0.0 {
                return Err(CheckpointError::Corrupt("core cycle count is invalid"));
            }
            if c.exceptions.len() > crate::engine::Engine::MAX_RECORDED_EXCEPTIONS {
                return Err(CheckpointError::Corrupt(
                    "recorded exceptions exceed the engine cap",
                ));
            }
            replays.push(Some(c));
        }
        ck::consumed(&r, ck::SEC_CORE)?;

        let cfg = MulticoreConfig {
            cores,
            quantum: quantum0,
            hierarchy,
            coherence,
            core,
            runtime: RuntimeConfig {
                quantum_sizing,
                weave_batch,
                speculative_weave,
                ..RuntimeConfig::default()
            },
            telemetry: false,
            fault: FaultPlan::default(),
        };
        let mut engine = MulticoreEngine::new(cfg);

        let mut r = ck::require(&sections, ck::SEC_COHERENT, "coherent hierarchy")?;
        engine.hierarchy = CoherentHierarchy::restore_state(hierarchy, coherence, cores, &mut r)?;
        ck::consumed(&r, ck::SEC_COHERENT)?;

        Ok((
            engine,
            replays,
            ResumeSeed {
                rt,
                quantum,
                quantum_end,
                spec_streak,
            },
        ))
    }

    /// The shared run loop entry for fresh runs: persistent workers
    /// (multi-core only), quantum barrier, batched weave, optional
    /// adaptive quantum.
    fn run_sources(
        self,
        sources: Vec<ShardSource<'_>>,
    ) -> Result<(MulticoreOutcome, CoherentHierarchy), RunError> {
        let replays = self.seed_replays(sources);
        self.run_loop(replays, None, None)
    }

    /// The run loop proper. `seed` resumes mid-run (runtime counters and
    /// quantum clock restored from a checkpoint); `checkpoint` captures
    /// a checkpoint into its sink at every N-th quantum boundary.
    fn run_loop(
        mut self,
        mut replays: Vec<Option<CoreReplay<'_>>>,
        seed: Option<ResumeSeed>,
        mut checkpoint: Option<CheckpointEvery<'_>>,
    ) -> Result<(MulticoreOutcome, CoherentHierarchy), RunError> {
        let n = self.cfg.cores;
        let mut rt = RuntimeStats::default();
        let mut timing = RuntimeTiming::default();
        // The no-op sink: `None` unless telemetry was requested, so a
        // disabled run takes no clock reads and allocates nothing.
        let mut tel: Option<RunTelemetry> = self.cfg.telemetry.then(|| RunTelemetry::new(n));

        // Persistent pool plumbing, created once per run: the barrier,
        // one state slot and one lane flag per core. With one core the
        // bound phase runs inline — there is nobody to overlap with.
        let use_threads = n > 1;
        let barrier = QuantumBarrier::new();
        let slots: Vec<Mutex<Option<WorkerTask<'_>>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let panics: Mutex<Vec<WorkerPanic>> = Mutex::new(Vec::new());
        let fault = self.cfg.fault;
        // Speculative-weave plumbing (DESIGN.md §15): claim table, bank
        // slots and the abort flag, created once per run like the
        // barrier. Inert (never released to) unless the knob is on.
        let spec_on = self.cfg.runtime.speculative_weave;
        let spec = SpecShared::new(
            self.hierarchy.banks(),
            self.cfg.hierarchy,
            self.cfg.coherence,
            self.cfg.runtime.weave_batch,
        );

        let run_result: Result<(), RunError> = std::thread::scope(|scope| {
            if use_threads {
                for (core, slot) in slots.iter().enumerate() {
                    let barrier = &barrier;
                    let panics = &panics;
                    let fault = &fault;
                    let spec = &spec;
                    scope.spawn(move || worker_loop(core, barrier, slot, panics, fault, spec));
                }
            }

            let (mut quantum, qmin, qmax) = match self.cfg.runtime.quantum_sizing {
                QuantumSizing::Fixed => (self.cfg.quantum, self.cfg.quantum, self.cfg.quantum),
                QuantumSizing::Adaptive { min, max } => (self.cfg.quantum, min, max),
            };
            let mut quantum_end = quantum;
            // Consecutive aborted epochs — the deterministic speculation
            // backoff state (checkpointed, so resume stays bit-identical).
            let mut spec_streak = 0u64;
            if let Some(s) = &seed {
                rt = s.rt;
                quantum = s.quantum;
                quantum_end = s.quantum_end;
                spec_streak = s.spec_streak;
            }

            loop {
                let all_done = replays
                    .iter_mut()
                    .all(|r| r.as_mut().expect("replay present between quanta").done());
                if all_done {
                    break;
                }

                // Lend each worker its replay cursor, L1 and span track.
                let t0 = Instant::now();
                for (c, slot) in slots.iter().enumerate() {
                    let task = WorkerTask {
                        replay: replays[c].take().expect("replay present between quanta"),
                        l1: self.hierarchy.take_l1(c),
                        track: tel.as_mut().and_then(|t| t.tracks[c].take()),
                        quantum: rt.quanta,
                        spec: None,
                    };
                    *lock_recover(slot) = Some(task);
                }

                // Parallel (bound) phase.
                let t1 = Instant::now();
                let t1n = tel.as_ref().map_or(0, |t| t.clock.now_ns());
                if use_threads {
                    barrier.release(n, quantum_end);
                    match self.cfg.runtime.watchdog {
                        None => barrier.wait_all_done(),
                        Some(deadline) => {
                            if let Err(err) = barrier.wait_all_done_deadline(deadline) {
                                // A stalled worker: retire the barrier so
                                // the survivors exit (and the stalled
                                // worker's eventual late report no-ops),
                                // then surface the typed stall.
                                let core = match err {
                                    BarrierWaitError::Stalled(cores) => {
                                        cores.first().copied().unwrap_or(0)
                                    }
                                    BarrierWaitError::TornDown => 0,
                                };
                                barrier.tear_down();
                                return Err(RunError::Stall(WorkerStall {
                                    core,
                                    phase: "bound",
                                    quantum: rt.quanta,
                                }));
                            }
                        }
                    }
                } else {
                    let mut g = lock_recover(&slots[0]);
                    let task = g.as_mut().expect("task was just lent");
                    run_task_caught(0, task, quantum_end, &panics, &fault);
                }
                let t2 = Instant::now();

                // Speculative weave epoch (DESIGN.md §15): lend the
                // banks, reset the claim table, release the workers a
                // second time. Whether to attempt is a pure function of
                // checkpointed state (`spec_streak`, `rt.quanta`), so
                // the schedule of attempts is deterministic; single-core
                // runs skip it outright (nobody to overlap with, and no
                // workers to release).
                let spec_attempted = spec_on
                    && use_threads
                    && (spec_streak < SPEC_STREAK_LIMIT || rt.quanta % SPEC_RETRY_PERIOD == 0);
                if spec_attempted {
                    rt.spec_epochs += 1;
                    let (banks, exts) = self.hierarchy.take_banks();
                    for (b, (bank, ext)) in banks.into_iter().zip(exts).enumerate() {
                        // analyze::order(Relaxed: single-threaded pre-release reset; release_phase's barrier publishes it to every worker before SpecWeave starts)
                        spec.claims[b].store(SPEC_FREE, Ordering::Relaxed);
                        *lock_recover(&spec.banks[b]) = Some((bank, ext));
                    }
                    // analyze::order(Relaxed: same single-threaded reset, published by the barrier release below)
                    spec.abort.store(false, Ordering::Relaxed);
                    barrier.release_phase(n, quantum_end, BarrierPhase::SpecWeave);
                    match self.cfg.runtime.watchdog {
                        None => barrier.wait_all_done(),
                        Some(deadline) => {
                            if let Err(err) = barrier.wait_all_done_deadline(deadline) {
                                let core = match err {
                                    BarrierWaitError::Stalled(cores) => {
                                        cores.first().copied().unwrap_or(0)
                                    }
                                    BarrierWaitError::TornDown => 0,
                                };
                                barrier.tear_down();
                                return Err(RunError::Stall(WorkerStall {
                                    core,
                                    phase: "speculative weave",
                                    quantum: rt.quanta,
                                }));
                            }
                        }
                    }
                }
                let t2s = Instant::now();

                // Reclaim the machine for the weave. An empty slot (the
                // worker failed to return its task — only reachable
                // through a handoff bug or a panic between take and
                // put-back) is tolerated here and surfaced as a
                // `WorkerPanic` below, after the panic log has been
                // consulted for the likelier root cause.
                let mut missing_slot: Option<usize> = None;
                let mut attempts: Vec<Option<SpecAttempt<'_>>> = (0..n).map(|_| None).collect();
                for (c, slot) in slots.iter().enumerate() {
                    match lock_recover(slot).take() {
                        Some(mut task) => {
                            attempts[c] = task.spec.take();
                            self.hierarchy.put_l1(c, task.l1);
                            replays[c] = Some(task.replay);
                            if let (Some(t), Some(track)) = (tel.as_mut(), task.track) {
                                t.tracks[c] = Some(track);
                            }
                        }
                        None => missing_slot = missing_slot.or(Some(c)),
                    }
                }
                let t3 = Instant::now();

                // Per-core barrier spans: from each core's bound-span end
                // to the reclaim point — the wait the aggregate
                // `barrier_s` sums away. Cores that recorded no bound
                // span this quantum (exhausted shard) are skipped: their
                // last span end predates this quantum's bound phase.
                if let Some(t) = tel.as_mut() {
                    for track in t.tracks.iter_mut().flatten() {
                        match track.last_end_ns() {
                            Some(wait_start) if wait_start >= t1n => {
                                let dur = track.record_since(Phase::Barrier, rt.quanta, wait_start);
                                t.barrier_wait_ns.record(dur);
                            }
                            _ => {}
                        }
                    }
                }

                // A worker panic aborts the run *before* the weave: the
                // panicking core's cursor is mid-op, so continuing would
                // simulate garbage. Stop the barrier first so the
                // surviving workers exit and the scope can join them.
                let worker_panic = {
                    let mut g = lock_recover(&panics);
                    g.sort_by_key(|p| p.core);
                    g.first().cloned()
                };
                if let Some(p) = worker_panic {
                    barrier.stop();
                    return Err(p.into());
                }
                if let Some(core) = missing_slot {
                    barrier.stop();
                    return Err(WorkerPanic {
                        core,
                        message: "worker slot empty after the bound phase \
                                  (worker did not return its task)"
                            .to_string(),
                    }
                    .into());
                }

                // Speculative commit point (DESIGN.md §15) — single
                // threaded, every worker quiesced. The epoch commits iff
                // every core ran conflict-free; the predicate depends
                // only on which (core, bank) pairs were touched, not on
                // how the workers were scheduled, so the decision — and
                // with it every committed counter — is deterministic.
                let mut spec_committed = false;
                if spec_attempted {
                    // analyze::order(Acquire: pairs with the workers' Release abort stores; wait_all_done already ordered every worker's epoch before this read)
                    let conflict_free = !spec.abort.load(Ordering::Acquire)
                        && attempts
                            .iter()
                            .all(|a| a.as_ref().is_some_and(|a| a.outcome.is_some()));
                    let mut banks = Vec::with_capacity(spec.banks.len());
                    let mut exts = Vec::with_capacity(spec.banks.len());
                    if conflict_free {
                        // Commit wholesale: merge each core's weave-tally
                        // delta in core order, then rebuild the bank
                        // array in bank order — claimed banks from the
                        // winners' clones, the rest from the untouched
                        // originals.
                        rt.spec_commits += 1;
                        spec_streak = 0;
                        spec_committed = true;
                        let mut committed: Vec<Option<(LevelBank, BankExt)>> =
                            (0..spec.banks.len()).map(|_| None).collect();
                        for (c, a) in attempts.iter_mut().enumerate() {
                            let a = a.as_mut().expect("conflict-free epoch has every attempt");
                            let outcome = a
                                .outcome
                                .take()
                                .expect("conflict-free epoch has every outcome");
                            let core = replays[c].as_ref().expect("replay present between quanta");
                            rt.weave_turns += core.weave.turns - a.snap.weave.turns;
                            rt.weave_transactions +=
                                core.weave.transactions - a.snap.weave.transactions;
                            rt.batched_transactions += core.weave.batched - a.snap.weave.batched;
                            // `contended` delta is zero by construction:
                            // remote involvement aborts the epoch.
                            if let Some(t) = tel.as_mut() {
                                for &s in &outcome.turn_sizes {
                                    t.weave_batch_sizes.record(u64::from(s));
                                }
                            }
                            for (b, clone) in outcome.banks.into_iter().enumerate() {
                                if let Some(clone) = clone {
                                    debug_assert!(
                                        committed[b].is_none(),
                                        "claim table kept bank sets disjoint"
                                    );
                                    committed[b] = Some(clone);
                                }
                            }
                        }
                        for (b, slot) in spec.banks.iter().enumerate() {
                            let original =
                                lock_recover(slot).take().expect("bank lent for the epoch");
                            let (bank, ext) = committed[b].take().unwrap_or(original);
                            banks.push(bank);
                            exts.push(ext);
                        }
                    } else {
                        // Abort: swap every core back to its pre-epoch
                        // L1 and replay state, drop the clones, return
                        // the (never-touched) originals. The serial
                        // weave below then executes the whole epoch —
                        // the residue — in its usual order.
                        rt.spec_aborts += 1;
                        spec_streak += 1;
                        for (c, a) in attempts.iter_mut().enumerate() {
                            if let Some(a) = a.take() {
                                replays[c]
                                    .as_mut()
                                    .expect("replay present between quanta")
                                    .rewind(a.snap);
                                self.hierarchy.put_l1(c, a.l1_before);
                            }
                        }
                        for slot in &spec.banks {
                            let (bank, ext) =
                                lock_recover(slot).take().expect("bank lent for the epoch");
                            banks.push(bank);
                            exts.push(ext);
                        }
                    }
                    self.hierarchy.put_banks(banks, exts);
                }

                // Serial (weave) phase: deterministic round-robin. An
                // engine panic here (e.g. an op that only ever reaches
                // the weave, like a misaligned CFORM-NT) is part of the
                // `try_run*` error contract too: catch it per turn,
                // stop the barrier so the scope can join the parked
                // workers, and surface it as the offending core's
                // `WorkerPanic`. After a *committed* speculative epoch
                // every core already sits at quantum end (or stream
                // exhaustion), so the round below retires nothing and
                // falls straight through.
                let weave_txns_before = rt.weave_transactions;
                let events_before = self.hierarchy.cross_core_events();
                let mut quantum_weave_ns = 0u64;
                loop {
                    let mut progressed = false;
                    for slot in replays.iter_mut() {
                        let mut core = slot.take().expect("replay present between quanta");
                        let turn_start = tel.as_ref().map(|t| t.clock.now_ns());
                        let batch_hist = tel.as_mut().map(|t| &mut t.weave_batch_sizes);
                        let turn = catch_unwind(AssertUnwindSafe(|| {
                            self.weave_turn(&mut core, quantum_end, &mut rt, batch_hist)
                        }));
                        let core_id = core.id;
                        *slot = Some(core);
                        match turn {
                            Ok(p) => {
                                progressed |= p;
                                if p {
                                    if let (Some(t), Some(start)) = (tel.as_mut(), turn_start) {
                                        let dur = t.clock.now_ns().saturating_sub(start);
                                        if let Some(track) = t.tracks[core_id].as_mut() {
                                            track.record(Phase::Weave, rt.quanta, start, dur);
                                        }
                                        t.weave_turn_ns.record(dur);
                                        t.per_core_weave_ns[core_id] += dur;
                                        quantum_weave_ns += dur;
                                    }
                                }
                            }
                            Err(payload) => {
                                barrier.stop();
                                return Err(WorkerPanic {
                                    core: core_id,
                                    message: panic_message(payload.as_ref()),
                                }
                                .into());
                            }
                        }
                    }
                    if !progressed {
                        break;
                    }
                }
                let t4 = Instant::now();

                // Transactions the serial phase executed after an
                // aborted epoch are the residue — the re-executed work
                // speculation failed to commit.
                if spec_attempted && !spec_committed {
                    rt.spec_residue_transactions += rt.weave_transactions - weave_txns_before;
                }

                timing.barrier_s += (t1 - t0).as_secs_f64() + (t3 - t2s).as_secs_f64();
                timing.bound_s += (t2 - t1).as_secs_f64();
                timing.weave_s += (t2s - t2).as_secs_f64() + (t4 - t3).as_secs_f64();
                if let Some(t) = tel.as_mut() {
                    // Whole-machine phase spans on the `runtime` track,
                    // plus this quantum's weave sample.
                    let bound_ns = (t2 - t1).as_nanos() as u64;
                    let spec_ns = (t2s - t2).as_nanos() as u64;
                    let weave_ns = (t4 - t3).as_nanos() as u64;
                    let reclaim_ns = (t3 - t2s).as_nanos() as u64;
                    t.runtime_track
                        .record(Phase::Bound, rt.quanta, t1n, bound_ns);
                    if spec_attempted {
                        t.runtime_track.record(
                            Phase::SpecWeave,
                            rt.quanta,
                            t1n + bound_ns,
                            spec_ns,
                        );
                    }
                    t.runtime_track.record(
                        Phase::Barrier,
                        rt.quanta,
                        t1n + bound_ns + spec_ns,
                        reclaim_ns,
                    );
                    t.runtime_track.record(
                        Phase::Weave,
                        rt.quanta,
                        t1n + bound_ns + spec_ns + reclaim_ns,
                        weave_ns,
                    );
                    t.push_quantum_weave(quantum_weave_ns);
                }
                rt.quanta += 1;
                rt.barrier_waits += n as u64;

                // Adaptive quantum: grow when a quantum saw no cross-core
                // coherence, shrink under heavy contention. Reads only
                // simulated state, so determinism is unaffected.
                let delta = self.hierarchy.cross_core_events() - events_before;
                if !matches!(self.cfg.runtime.quantum_sizing, QuantumSizing::Fixed) {
                    if delta == 0 {
                        quantum = (quantum * 2.0).min(qmax);
                    } else if delta > ADAPTIVE_SHRINK_THRESHOLD {
                        quantum = (quantum / 2.0).max(qmin);
                    }
                }
                quantum_end += quantum;

                // Fast-forward over empty quanta: if every unfinished core
                // is already past the boundary (e.g. one committed a huge
                // `Exec`), jump to the first quantum in which some core can
                // run instead of waking idle workers one quantum at a time.
                // Pure f64 math on deterministic inputs.
                let min_cycles = replays
                    .iter_mut()
                    .filter_map(|r| {
                        let r = r.as_mut().expect("replay present between quanta");
                        if r.done() {
                            None
                        } else {
                            Some(r.cycles)
                        }
                    })
                    .fold(f64::INFINITY, f64::min);
                if min_cycles.is_finite() && min_cycles >= quantum_end {
                    let skipped = ((min_cycles - quantum_end) / quantum).floor() + 1.0;
                    quantum_end += skipped * quantum;
                }

                // Checkpoint at the quantum boundary: every worker has
                // quiesced (barrier crossed, L1s reclaimed, weave done),
                // so the machine is single-threaded here and the capture
                // is plain sequential code — the drain protocol
                // model-checked in `califorms-analyze`.
                if let Some((k, sink)) = checkpoint.as_mut() {
                    if rt.quanta % *k == 0 {
                        sink(self.capture_checkpoint(
                            &replays,
                            &rt,
                            quantum,
                            quantum_end,
                            spec_streak,
                        ));
                    }
                }
            }
            barrier.stop();
            Ok(())
        });
        run_result?;

        let cores = replays
            .into_iter()
            .map(|r| r.expect("replay present at finish"))
            .collect();
        Ok(self.finish(cores, rt, timing, tel))
    }

    fn finish(
        self,
        cores: Vec<CoreReplay<'_>>,
        rt: RuntimeStats,
        mut timing: RuntimeTiming,
        tel: Option<RunTelemetry>,
    ) -> (MulticoreOutcome, CoherentHierarchy) {
        let mut per_core = Vec::with_capacity(cores.len());
        let mut exceptions = Vec::with_capacity(cores.len());
        let mut combined = SimStats::default();
        let mut weave = WeaveBreakdown {
            per_core: Vec::with_capacity(cores.len()),
            per_shard: self
                .hierarchy
                .shard_stats()
                .iter()
                .map(|s| ShardWeaveStats {
                    transactions: s.weave_transactions,
                    batched: s.weave_batched,
                    contended: s.weave_contended,
                })
                .collect(),
        };
        let mut decode = Vec::new();
        for core in &cores {
            let stats = SimStats {
                cycles: core.cycles,
                instructions: core.instructions,
                loads: core.loads,
                stores: core.stores,
                cforms: core.cforms,
                stores_suppressed: core.stores_suppressed,
                exceptions_delivered: core.mask.delivered_count(),
                exceptions_suppressed: core.mask.suppressed_count(),
                l1d: self.hierarchy.l1s()[core.id].stats(),
                ..SimStats::default()
            };
            combined.cycles = combined.cycles.max(stats.cycles);
            combined.instructions += stats.instructions;
            combined.loads += stats.loads;
            combined.stores += stats.stores;
            combined.cforms += stats.cforms;
            combined.stores_suppressed += stats.stores_suppressed;
            combined.exceptions_delivered += stats.exceptions_delivered;
            combined.exceptions_suppressed += stats.exceptions_suppressed;
            per_core.push(stats);
            exceptions.push(core.exceptions.clone());
            weave.per_core.push(core.weave);
            if let Some(progress) = core.src.decode_progress() {
                decode.push(progress);
            }
        }
        self.hierarchy.export_stats(&mut combined);
        let stats = MulticoreStats {
            per_core,
            combined,
            runtime: rt,
            weave,
        };
        let telemetry = tel.map(|t| {
            timing.weave_breakdown = WeaveTimingBreakdown {
                per_core_s: t
                    .per_core_weave_ns
                    .iter()
                    .map(|&ns| ns as f64 / 1e9)
                    .collect(),
                per_quantum_s: t
                    .per_quantum_weave_ns
                    .iter()
                    .map(|&ns| ns as f64 / 1e9)
                    .collect(),
                quantum_samples_dropped: t.quantum_samples_dropped,
            };
            let counters = crate::telemetry::multicore_counters(
                &stats,
                &self.hierarchy.shard_stats(),
                &self.hierarchy.bank_level_stats(),
                &decode,
            )
            .snapshot();
            let mut spans = Vec::new();
            let mut track_names = Vec::new();
            let mut dropped_spans = 0u64;
            let tracks = t
                .tracks
                .into_iter()
                .flatten()
                .chain(std::iter::once(t.runtime_track));
            for track in tracks {
                let name = if (track.track() as usize) < cores.len() {
                    format!("core {}", track.track())
                } else {
                    "runtime".to_string()
                };
                track_names.push((track.track(), name));
                dropped_spans += track.dropped();
                let (events, _) = track.into_parts();
                spans.extend(events);
            }
            TelemetryReport {
                counters,
                weave_batch_sizes: t.weave_batch_sizes,
                spans,
                track_names,
                weave_turn_ns: t.weave_turn_ns,
                barrier_wait_ns: t.barrier_wait_ns,
                dropped_spans,
            }
        });
        let outcome = MulticoreOutcome {
            stats,
            exceptions,
            timing,
            telemetry,
        };
        (outcome, self.hierarchy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(cores: usize) -> MulticoreEngine {
        MulticoreEngine::new(MulticoreConfig::westmere(cores))
    }

    fn expect_worker_panic(err: RunError) -> WorkerPanic {
        match err {
            RunError::Panic(p) => p,
            other => panic!("expected a worker panic, got: {other}"),
        }
    }

    #[test]
    fn single_core_runs_a_plain_trace() {
        let out = engine(1).run(vec![vec![
            TraceOp::Exec(400),
            TraceOp::Store {
                addr: 0x100,
                size: 8,
            },
            TraceOp::Load {
                addr: 0x100,
                size: 8,
            },
        ]]);
        let s = &out.stats.per_core[0];
        assert_eq!(s.instructions, 402);
        assert_eq!(s.loads, 1);
        assert_eq!(s.stores, 1);
        assert_eq!(out.stats.combined.instructions, 402);
    }

    #[test]
    fn per_core_counters_split_by_shard() {
        let out = engine(2).run(vec![
            vec![
                TraceOp::Load {
                    addr: 0x1000,
                    size: 8
                };
                10
            ],
            vec![
                TraceOp::Store {
                    addr: 0x8000,
                    size: 8
                };
                4
            ],
        ]);
        assert_eq!(out.stats.per_core[0].loads, 10);
        assert_eq!(out.stats.per_core[0].stores, 0);
        assert_eq!(out.stats.per_core[1].stores, 4);
        assert_eq!(out.stats.combined.loads, 10);
        assert_eq!(out.stats.combined.stores, 4);
    }

    #[test]
    fn makespan_is_the_slowest_core() {
        let out = engine(2).run(vec![
            vec![TraceOp::Exec(4_000)],
            vec![TraceOp::Exec(400_000)],
        ]);
        assert!(out.stats.per_core[1].cycles > out.stats.per_core[0].cycles);
        assert_eq!(out.stats.combined.cycles, out.stats.per_core[1].cycles);
        assert!(out.stats.aggregate_ipc() > 0.0);
    }

    #[test]
    fn cross_core_sharing_is_counted() {
        // Both cores hammer the same line with stores: the line must
        // ping-pong with recalls + invalidations.
        let shard = |n: u64| -> Vec<TraceOp> {
            (0..n)
                .flat_map(|_| {
                    [TraceOp::Store {
                        addr: 0x4000,
                        size: 8,
                    }]
                })
                .collect()
        };
        let out = engine(2).run(vec![shard(50), shard(50)]);
        assert!(
            out.stats.combined.coherence.invalidations > 0,
            "write sharing must invalidate"
        );
        assert!(out.stats.combined.coherence.cache_to_cache_transfers > 0);
        assert!(
            out.stats.runtime.contended_transactions > 0,
            "ping-pong transactions must be flagged contended"
        );
    }

    #[test]
    fn mask_windows_are_per_core() {
        // Core 0 arms a mask and sweeps a security byte (suppressed);
        // core 1 does the same sweep unmasked (delivered).
        let cform = TraceOp::Cform {
            line_addr: 0x2000,
            attrs: 1 << 5,
            mask: 1 << 5,
        };
        let probe = TraceOp::Load {
            addr: 0x2005,
            size: 1,
        };
        let out = engine(2).run(vec![
            vec![cform, TraceOp::MaskPush, probe, TraceOp::MaskPop],
            vec![TraceOp::Exec(100_000), probe],
        ]);
        assert_eq!(out.stats.per_core[0].exceptions_suppressed, 1);
        assert_eq!(out.stats.per_core[0].exceptions_delivered, 0);
        assert_eq!(out.stats.per_core[1].exceptions_delivered, 1);
        assert_eq!(out.exceptions[1][0].fault_addr, 0x2005);
    }

    #[test]
    fn disjoint_misses_batch_without_contention() {
        // Two cores streaming through disjoint regions: every miss is
        // private, so weave turns batch runs of them and no transaction
        // is ever contended.
        let shard = |base: u64| -> Vec<TraceOp> {
            (0..256u64)
                .map(|i| TraceOp::Load {
                    addr: base + i * 64,
                    size: 8,
                })
                .collect()
        };
        let out = engine(2).run(vec![shard(0x10_0000), shard(0x90_0000)]);
        assert_eq!(out.stats.runtime.contended_transactions, 0);
        assert_eq!(out.stats.combined.coherence.invalidations, 0);
        assert!(
            out.stats.runtime.batched_transactions > 0,
            "private miss runs must share weave turns"
        );
    }

    #[test]
    fn runtime_counters_populate() {
        let shards = vec![
            vec![
                TraceOp::Store {
                    addr: 0x9000,
                    size: 8
                };
                64
            ],
            vec![
                TraceOp::Store {
                    addr: 0xA0000,
                    size: 8
                };
                64
            ],
        ];
        let out = engine(2).run(shards);
        assert!(out.stats.runtime.quanta >= 1);
        assert_eq!(
            out.stats.runtime.barrier_waits,
            out.stats.runtime.quanta * 2
        );
        assert!(out.timing.bound_s >= 0.0);
    }

    #[test]
    #[should_panic(expected = "one shard per configured core")]
    fn shard_count_mismatch_panics() {
        engine(2).run(vec![vec![]]);
    }

    /// A panicking worker used to leave the quantum barrier waiting for a
    /// completion that never came, hanging the run; it must now surface
    /// as an `Err` naming the offending core.
    #[test]
    fn worker_panic_surfaces_as_err_with_core_id() {
        // A misaligned CFORM target panics in `CformInstruction::new`
        // inside core 1's bound phase.
        let shards = vec![
            vec![TraceOp::Exec(10), TraceOp::Exec(10)],
            vec![TraceOp::Cform {
                line_addr: 0x1001,
                attrs: 1,
                mask: 1,
            }],
        ];
        let err = expect_worker_panic(engine(2).try_run(shards).unwrap_err());
        assert_eq!(err.core, 1);
        assert!(
            err.message.contains("aligned"),
            "panic message is preserved: {}",
            err.message
        );
    }

    /// A panic on the main-thread weave path is part of the same error
    /// contract: a misaligned `CFORM-NT` never runs in the bound phase
    /// (non-temporal CFORMs are always coherence transactions), so its
    /// alignment assert fires inside the weave — and must come back as
    /// `Err` with the woven core's id, not unwind past the barrier.
    #[test]
    fn weave_phase_panic_surfaces_as_err_with_core_id() {
        let shards = vec![
            vec![TraceOp::Exec(10)],
            vec![TraceOp::CformNt {
                line_addr: 0x1001,
                attrs: 1,
                mask: 1,
            }],
        ];
        let err = expect_worker_panic(engine(2).try_run(shards).unwrap_err());
        assert_eq!(err.core, 1);
        assert!(err.message.contains("aligned"), "{}", err.message);
    }

    /// The inline single-core bound phase takes the same catch path.
    #[test]
    fn single_core_panic_surfaces_as_err() {
        let shards = vec![vec![TraceOp::Cform {
            line_addr: 0x77,
            attrs: 1,
            mask: 1,
        }]];
        let err = expect_worker_panic(engine(1).try_run(shards).unwrap_err());
        assert_eq!(err.core, 0);
    }

    /// The panicking `run` wrapper re-panics on the main thread (instead
    /// of hanging) with the core id in the message.
    #[test]
    #[should_panic(expected = "worker thread for core 0 panicked")]
    fn run_wrapper_repanics_with_core_id() {
        engine(2).run(vec![
            vec![TraceOp::Cform {
                line_addr: 0x33,
                attrs: 1,
                mask: 1,
            }],
            vec![TraceOp::Exec(1)],
        ]);
    }

    #[test]
    #[should_panic(expected = "one pack per configured core")]
    fn pack_count_mismatch_panics() {
        engine(2).run_packs(&[TracePack::from_ops(std::iter::empty())]);
    }

    /// A poisoned worker slot must not take down the worker loop with a
    /// nested "worker slot poisoned" panic: pre-fix, the worker died
    /// before calling `worker_done`, so `wait_all_done` here hung
    /// forever; now the loop recovers the guard, finds the slot empty,
    /// and still reports done.
    #[test]
    fn worker_loop_survives_a_poisoned_slot() {
        let barrier = QuantumBarrier::new();
        let slot: Mutex<Option<WorkerTask<'static>>> = Mutex::new(None);
        let _ = catch_unwind(AssertUnwindSafe(|| {
            let _g = slot.lock().unwrap();
            panic!("poison the slot");
        }));
        assert!(slot.is_poisoned());
        let panics: Mutex<Vec<WorkerPanic>> = Mutex::new(Vec::new());
        let fault = FaultPlan::default();
        let spec = SpecShared::new(
            1,
            HierarchyConfig::westmere(),
            CoherenceConfig::westmere(),
            1,
        );
        std::thread::scope(|scope| {
            scope.spawn(|| worker_loop(0, &barrier, &slot, &panics, &fault, &spec));
            barrier.release(1, 10_000.0);
            barrier.wait_all_done();
            barrier.stop();
        });
        assert!(
            lock_recover(&panics).is_empty(),
            "an empty poisoned slot is not itself a worker panic"
        );
    }

    /// A panic in the replay must land in the panic log even when the log
    /// mutex is already poisoned (e.g. by a concurrently panicking
    /// sibling) — the recorded entry is what `try_run*` surfaces as the
    /// `WorkerPanic` error instead of a nested panic.
    #[test]
    fn panic_log_records_through_poison() {
        let panics: Mutex<Vec<WorkerPanic>> = Mutex::new(Vec::new());
        let _ = catch_unwind(AssertUnwindSafe(|| {
            let _g = panics.lock().unwrap();
            panic!("poison the log");
        }));
        assert!(panics.is_poisoned());
        lock_recover(&panics).push(WorkerPanic {
            core: 3,
            message: "late arrival".into(),
        });
        let g = lock_recover(&panics);
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].core, 3);
    }

    /// A mixed workload with private and cross-core-shared lines plus
    /// CFORMs — enough coherence traffic to exercise the directory,
    /// spills/fills and the weave counters across many quanta.
    fn crash_test_ops() -> Vec<TraceOp> {
        let mut ops = Vec::new();
        let mut x: u64 = 0x1234_5678_9abc_def0;
        for i in 0..1500u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let addr = ((x >> 33) % 512) * 8;
            match i % 7 {
                0 => ops.push(TraceOp::Exec((x % 50) as u32 + 1)),
                1 => ops.push(TraceOp::Load { addr, size: 8 }),
                2 => ops.push(TraceOp::Store { addr, size: 8 }),
                3 => ops.push(TraceOp::Load {
                    addr: 0x10_000 + addr,
                    size: 8,
                }),
                4 => ops.push(TraceOp::Store {
                    addr: 0x20_000 + addr,
                    size: 8,
                }),
                5 => ops.push(TraceOp::Cform {
                    line_addr: 0x40_000 + (addr / 64) * 64,
                    attrs: 1,
                    mask: 1,
                }),
                _ => ops.push(TraceOp::Exec((x % 9) as u32 + 1)),
            }
        }
        ops
    }

    /// The core of the crash-tolerance contract: resuming any mid-run
    /// checkpoint reproduces the straight-through run bit-identically —
    /// stats, runtime/weave counters and exceptions — across core counts
    /// and weave batch sizes.
    #[test]
    fn checkpoint_resume_is_bit_identical() {
        let pack = TracePack::from_ops(crash_test_ops());
        for &cores in &[1usize, 2, 4] {
            for &batch in &[1u32, 64] {
                let cfg = MulticoreConfig::westmere(cores).with_weave_batch(batch);
                let reference = MulticoreEngine::new(cfg).try_run_pack(&pack).unwrap();
                let (full, checkpoints) = MulticoreEngine::new(cfg)
                    .try_run_pack_checkpointed(&pack, 2)
                    .unwrap();
                assert_eq!(
                    full.stats, reference.stats,
                    "checkpointing itself must not perturb the run \
                     (cores={cores} batch={batch})"
                );
                assert!(
                    !checkpoints.is_empty(),
                    "run too short to checkpoint (cores={cores} batch={batch})"
                );
                for (i, bytes) in checkpoints.iter().enumerate() {
                    let resumed = MulticoreEngine::try_resume_pack(&pack, bytes).unwrap();
                    assert_eq!(
                        resumed.stats, reference.stats,
                        "resume from checkpoint {i} diverged (cores={cores} batch={batch})"
                    );
                    assert_eq!(resumed.exceptions, reference.exceptions);
                }
            }
        }
    }

    /// Adaptive quantum sizing is part of the checkpointed state: the
    /// resumed run continues with the adapted quantum, not the initial
    /// one.
    #[test]
    fn checkpoint_resume_preserves_adaptive_quantum() {
        let pack = TracePack::from_ops(crash_test_ops());
        let cfg = MulticoreConfig::westmere(2).with_adaptive_quantum();
        let reference = MulticoreEngine::new(cfg).try_run_pack(&pack).unwrap();
        let (_, checkpoints) = MulticoreEngine::new(cfg)
            .try_run_pack_checkpointed(&pack, 3)
            .unwrap();
        for bytes in &checkpoints {
            let resumed = MulticoreEngine::try_resume_pack(&pack, bytes).unwrap();
            assert_eq!(resumed.stats, reference.stats);
        }
    }

    /// An injected worker kill surfaces as a typed `RunError::Panic`
    /// naming the killed core — the run never hangs at the barrier.
    #[test]
    fn kill_fault_surfaces_as_typed_panic() {
        let pack = TracePack::from_ops(crash_test_ops());
        let cfg = MulticoreConfig::westmere(2).with_fault(FaultPlan {
            kill_at: Some((1, 0)),
            ..FaultPlan::default()
        });
        let err = expect_worker_panic(MulticoreEngine::new(cfg).try_run_pack(&pack).unwrap_err());
        assert_eq!(err.core, 1);
        assert!(
            err.message.contains("fault injection"),
            "injected kills are identifiable: {}",
            err.message
        );
    }

    /// An injected stall trips the barrier watchdog within its deadline
    /// and comes back as `RunError::Stall` naming the stalled core and
    /// phase — never a hang.
    #[test]
    fn stall_fault_trips_the_watchdog() {
        let pack = TracePack::from_ops(crash_test_ops());
        let cfg = MulticoreConfig::westmere(2)
            .with_watchdog(Some(Duration::from_millis(50)))
            .with_fault(FaultPlan {
                stall_at: Some((1, 0, 400)),
                ..FaultPlan::default()
            });
        let err = MulticoreEngine::new(cfg).try_run_pack(&pack).unwrap_err();
        match err {
            RunError::Stall(s) => {
                assert_eq!(s.core, 1, "the stalled core is named");
                assert_eq!(s.phase, "bound");
                assert!(s.to_string().contains("watchdog"), "{s}");
            }
            other => panic!("expected a stall, got: {other}"),
        }
    }

    /// A fault plan that never fires leaves the run bit-identical to an
    /// unfaulted one (the hooks are free until they trigger).
    #[test]
    fn dormant_fault_plan_is_invisible() {
        let pack = TracePack::from_ops(crash_test_ops());
        let reference = engine(2).try_run_pack(&pack).unwrap();
        let cfg = MulticoreConfig::westmere(2).with_fault(FaultPlan {
            kill_at: Some((0, u64::MAX)),
            stall_at: Some((1, u64::MAX, 1)),
        });
        let out = MulticoreEngine::new(cfg).try_run_pack(&pack).unwrap();
        assert_eq!(out.stats, reference.stats);
    }
}
