//! Heterogeneous / DMA access (Section 7.2, "Heterogeneous Architectural
//! Attacks").
//!
//! Califorms' protection lives in the memory hierarchy's layers; a DMA
//! engine (or accelerator) that bypasses them sees the **raw sentinel
//! format** below the L1. This module models both worlds:
//!
//! * a *califorms-aware* engine ([`DmaEngine::respecting`]) performs the
//!   fill conversion and honours security bytes — the mitigation the
//!   paper prescribes ("these mechanisms [must] always respect the
//!   security byte semantics");
//! * a *legacy* engine ([`DmaEngine::bypassing`]) copies raw bytes. The
//!   tests demonstrate the two failure modes the paper warns about: the
//!   tripwires are silently skipped, **and** the data itself is garbled,
//!   because a califormed line's first bytes hold the header and the
//!   displaced data sits in the security-byte slots.

use crate::hierarchy::Hierarchy;
use crate::{line_base, line_offset, LINE_BYTES};
use califorms_core::fill_canonical;

/// Result of a DMA transfer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DmaTransfer {
    /// Bytes delivered to the device.
    pub data: Vec<u8>,
    /// Security bytes encountered (aware engines report them; bypassing
    /// engines cannot tell and always report 0).
    pub security_bytes_seen: usize,
}

/// A DMA engine reading below the L1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaEngine {
    /// Whether the engine understands the califorms-sentinel format.
    pub respects_califorms: bool,
}

impl DmaEngine {
    /// An engine extended with califorms support (the mitigation).
    pub const fn respecting() -> Self {
        Self {
            respects_califorms: true,
        }
    }

    /// A legacy engine that bypasses the security-byte semantics.
    pub const fn bypassing() -> Self {
        Self {
            respects_califorms: false,
        }
    }

    /// Reads `[addr, addr+len)` directly from memory (the hierarchy first
    /// writes the lines back, as a coherent DMA would force). A transfer
    /// may cover up to and including the last byte of the address space.
    ///
    /// # Panics
    ///
    /// Panics if the transfer wraps around the 64-bit address space
    /// (`addr + len - 1` overflows) — a wrapping descriptor is a
    /// programming error (real DMA engines fault it), and the old
    /// unchecked arithmetic made it silently read nothing.
    pub fn read(&self, hierarchy: &mut Hierarchy, addr: u64, len: usize) -> DmaTransfer {
        let mut data = Vec::with_capacity(len);
        let mut security = 0usize;
        if len == 0 {
            return DmaTransfer {
                data,
                security_bytes_seen: security,
            };
        }
        // Inclusive last byte, so a transfer ending flush at the top of
        // the address space is representable and only true wraps fault.
        let last = addr.checked_add(len as u64 - 1).unwrap_or_else(|| {
            panic!(
                "DMA transfer [{addr:#x}, {addr:#x} + {len:#x}) wraps past the \
                 top of the address space"
            )
        });
        let mut line_addr = line_base(addr);
        loop {
            hierarchy.evict_line_to_dram(line_addr);
            let raw = hierarchy.dram_line(line_addr);
            let line_last = (line_addr | (LINE_BYTES - 1)).min(last);
            let start = if line_addr <= addr {
                line_offset(addr)
            } else {
                0
            };
            let end_off = (line_last - line_addr) as usize;
            if self.respects_califorms {
                let l1 = fill_canonical(&raw);
                for off in start..=end_off {
                    if l1.line().is_security_byte(off) {
                        security += 1;
                        data.push(0); // zero-substitute, like the core would
                    } else {
                        data.push(l1.line().data()[off]);
                    }
                }
            } else {
                // Legacy path: raw bytes, sentinel header and all.
                data.extend_from_slice(&raw.bytes[start..=end_off]);
            }
            if line_last == last {
                break;
            }
            line_addr += LINE_BYTES;
        }
        DmaTransfer {
            data,
            security_bytes_seen: security,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::HierarchyConfig;
    use califorms_core::CformInstruction;

    fn hier_with_victim() -> (Hierarchy, u64) {
        let mut h = Hierarchy::new(HierarchyConfig::westmere());
        let base = 0x6_0000u64;
        h.store(base, &[0xAB; 16], 0);
        h.cform(&CformInstruction::set(base, 1 << 4), 0);
        (h, base)
    }

    #[test]
    fn respecting_dma_behaves_like_the_core() {
        let (mut h, base) = hier_with_victim();
        let t = DmaEngine::respecting().read(&mut h, base, 16);
        assert_eq!(t.security_bytes_seen, 1);
        assert_eq!(t.data[4], 0, "security byte zero-substituted");
        assert_eq!(t.data[0], 0xAB);
        assert_eq!(t.data[15], 0xAB);
    }

    #[test]
    fn bypassing_dma_misses_tripwires_and_garbles_data() {
        let (mut h, base) = hier_with_victim();
        let t = DmaEngine::bypassing().read(&mut h, base, 16);
        assert_eq!(t.security_bytes_seen, 0, "legacy engine is blind");
        // The raw sentinel line puts the header in byte 0 (count code +
        // Addr0 = 4 → byte0 = 0b000100_00 = 0x10, not the program's 0xAB):
        // the device receives garbage, the paper's compatibility hazard.
        assert_ne!(t.data[0], 0xAB, "header where data should be");
        // And the displaced original byte sits in the security slot.
        assert_eq!(t.data[4], 0xAB, "displaced data visible raw");
    }

    /// A transfer that would wrap past the top of the address space must
    /// fault loudly instead of silently reading nothing (`addr + len`
    /// used to wrap, making `cur < end` false immediately).
    #[test]
    #[should_panic(expected = "wraps past the top of the address space")]
    fn wrapping_transfer_panics() {
        let mut h = Hierarchy::new(HierarchyConfig::westmere());
        DmaEngine::respecting().read(&mut h, u64::MAX - 7, 16);
    }

    /// The top of the address space stays addressable: a transfer
    /// covering the whole final line — including the very last byte —
    /// is served without tripping the wrap check.
    #[test]
    fn transfer_ending_at_address_space_top_is_served() {
        let mut h = Hierarchy::new(HierarchyConfig::westmere());
        let base = u64::MAX - 63; // final line's base
        h.store(base, &[0xEE; 8], 0);
        let t = DmaEngine::respecting().read(&mut h, base, 64);
        assert_eq!(t.data.len(), 64);
        assert_eq!(&t.data[..8], &[0xEE; 8]);
        let t = DmaEngine::bypassing().read(&mut h, base, 64);
        assert_eq!(t.data.len(), 64);
        // An unaligned tail read of just the last bytes also works.
        let t = DmaEngine::respecting().read(&mut h, u64::MAX - 2, 3);
        assert_eq!(t.data.len(), 3);
        // Zero-length transfers are trivially empty.
        let t = DmaEngine::respecting().read(&mut h, base, 0);
        assert!(t.data.is_empty());
    }

    #[test]
    fn clean_lines_are_identical_for_both_engines() {
        let mut h = Hierarchy::new(HierarchyConfig::westmere());
        h.store(0x7_0000, &[3, 1, 4, 1, 5, 9, 2, 6], 0);
        let a = DmaEngine::respecting().read(&mut h, 0x7_0000, 8);
        let b = DmaEngine::bypassing().read(&mut h, 0x7_0000, 8);
        assert_eq!(a.data, b.data);
        assert_eq!(a.data, vec![3, 1, 4, 1, 5, 9, 2, 6]);
    }
}
