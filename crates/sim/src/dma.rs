//! Heterogeneous / DMA access (Section 7.2, "Heterogeneous Architectural
//! Attacks").
//!
//! Califorms' protection lives in the memory hierarchy's layers; a DMA
//! engine (or accelerator) that bypasses them sees the **raw sentinel
//! format** below the L1. This module models both worlds:
//!
//! * a *califorms-aware* engine ([`DmaEngine::respecting`]) performs the
//!   fill conversion and honours security bytes — the mitigation the
//!   paper prescribes ("these mechanisms [must] always respect the
//!   security byte semantics");
//! * a *legacy* engine ([`DmaEngine::bypassing`]) copies raw bytes. The
//!   tests demonstrate the two failure modes the paper warns about: the
//!   tripwires are silently skipped, **and** the data itself is garbled,
//!   because a califormed line's first bytes hold the header and the
//!   displaced data sits in the security-byte slots.

use crate::hierarchy::Hierarchy;
use crate::{line_base, LINE_BYTES};
use califorms_core::fill;

/// Result of a DMA transfer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DmaTransfer {
    /// Bytes delivered to the device.
    pub data: Vec<u8>,
    /// Security bytes encountered (aware engines report them; bypassing
    /// engines cannot tell and always report 0).
    pub security_bytes_seen: usize,
}

/// A DMA engine reading below the L1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaEngine {
    /// Whether the engine understands the califorms-sentinel format.
    pub respects_califorms: bool,
}

impl DmaEngine {
    /// An engine extended with califorms support (the mitigation).
    pub const fn respecting() -> Self {
        Self {
            respects_califorms: true,
        }
    }

    /// A legacy engine that bypasses the security-byte semantics.
    pub const fn bypassing() -> Self {
        Self {
            respects_califorms: false,
        }
    }

    /// Reads `[addr, addr+len)` directly from memory (the hierarchy first
    /// writes the lines back, as a coherent DMA would force).
    pub fn read(&self, hierarchy: &mut Hierarchy, addr: u64, len: usize) -> DmaTransfer {
        let mut data = Vec::with_capacity(len);
        let mut security = 0usize;
        let mut cur = addr;
        let end = addr + len as u64;
        while cur < end {
            let line_addr = line_base(cur);
            hierarchy.evict_line_to_dram(line_addr);
            let raw = hierarchy.dram_line(line_addr);
            let chunk_end = (line_addr + LINE_BYTES).min(end);
            if self.respects_califorms {
                let l1 = fill(&raw).expect("well-formed line");
                while cur < chunk_end {
                    let off = (cur - line_addr) as usize;
                    if l1.line().is_security_byte(off) {
                        security += 1;
                        data.push(0); // zero-substitute, like the core would
                    } else {
                        data.push(l1.line().data()[off]);
                    }
                    cur += 1;
                }
            } else {
                // Legacy path: raw bytes, sentinel header and all.
                while cur < chunk_end {
                    data.push(raw.bytes[(cur - line_addr) as usize]);
                    cur += 1;
                }
            }
        }
        DmaTransfer {
            data,
            security_bytes_seen: security,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::HierarchyConfig;
    use califorms_core::CformInstruction;

    fn hier_with_victim() -> (Hierarchy, u64) {
        let mut h = Hierarchy::new(HierarchyConfig::westmere());
        let base = 0x6_0000u64;
        h.store(base, &[0xAB; 16], 0);
        h.cform(&CformInstruction::set(base, 1 << 4), 0);
        (h, base)
    }

    #[test]
    fn respecting_dma_behaves_like_the_core() {
        let (mut h, base) = hier_with_victim();
        let t = DmaEngine::respecting().read(&mut h, base, 16);
        assert_eq!(t.security_bytes_seen, 1);
        assert_eq!(t.data[4], 0, "security byte zero-substituted");
        assert_eq!(t.data[0], 0xAB);
        assert_eq!(t.data[15], 0xAB);
    }

    #[test]
    fn bypassing_dma_misses_tripwires_and_garbles_data() {
        let (mut h, base) = hier_with_victim();
        let t = DmaEngine::bypassing().read(&mut h, base, 16);
        assert_eq!(t.security_bytes_seen, 0, "legacy engine is blind");
        // The raw sentinel line puts the header in byte 0 (count code +
        // Addr0 = 4 → byte0 = 0b000100_00 = 0x10, not the program's 0xAB):
        // the device receives garbage, the paper's compatibility hazard.
        assert_ne!(t.data[0], 0xAB, "header where data should be");
        // And the displaced original byte sits in the security slot.
        assert_eq!(t.data[4], 0xAB, "displaced data visible raw");
    }

    #[test]
    fn clean_lines_are_identical_for_both_engines() {
        let mut h = Hierarchy::new(HierarchyConfig::westmere());
        h.store(0x7_0000, &[3, 1, 4, 1, 5, 9, 2, 6], 0);
        let a = DmaEngine::respecting().read(&mut h, 0x7_0000, 8);
        let b = DmaEngine::bypassing().read(&mut h, 0x7_0000, 8);
        assert_eq!(a.data, b.data);
        assert_eq!(a.data, vec![3, 1, 4, 1, 5, 9, 2, 6]);
    }
}
