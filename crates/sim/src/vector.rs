//! SIMD/vector load handling (paper Appendix B).
//!
//! Wide vector loads (e.g. 512-bit AVX-512) complicate precise
//! security-byte checking. The paper sketches three options and leaves
//! choosing between them as future work; this module implements all
//! three so the ablation bench can compare them:
//!
//! 1. [`VectorMode::Precise`] — behave like per-byte scalar loads (gather
//!    with masks): exact detection, zeros substituted, highest cost.
//! 2. [`VectorMode::TrapOnAny`] — issue the wide load as is and trap if it
//!    touches *any* security byte: cheap, but **false positives** when a
//!    vector sweep legitimately straddles a span.
//! 3. [`VectorMode::Propagate`] — add one poison bit per byte to the
//!    vector register, defer the exception to a *use* of a poisoned lane:
//!    no false positives on loads whose poisoned lanes are masked off
//!    before use.

use crate::hierarchy::{Hierarchy, MemResult};
use califorms_core::{AccessKind, CaliformsException, ExceptionKind};

/// The Appendix B vector-load policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VectorMode {
    /// Option 1: per-byte precise checking (vector gather semantics).
    #[default]
    Precise,
    /// Option 2: trap when any loaded byte is a security byte.
    TrapOnAny,
    /// Option 3: propagate per-byte poison into the register; trap on use.
    Propagate,
}

/// A vector register value with its poison mask (option 3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VectorValue {
    /// The lane bytes (zeros in poisoned lanes).
    pub data: Vec<u8>,
    /// Bit `i` set ⇒ lane byte `i` is poisoned (came from a security byte).
    pub poison: u64,
}

impl VectorValue {
    /// Whether using lanes `use_mask` (bit per byte) faults: any poisoned
    /// lane that is actually consumed raises the deferred exception.
    pub fn use_lanes(&self, use_mask: u64) -> Option<u64> {
        let hit = self.poison & use_mask;
        (hit != 0).then_some(hit)
    }
}

/// Performs a wide vector load of `len` bytes (≤64) under `mode`.
///
/// Returns the memory result (latency, data, possible exception) plus the
/// poison mask for [`VectorMode::Propagate`] — empty otherwise.
pub fn vector_load(
    hierarchy: &mut Hierarchy,
    addr: u64,
    len: usize,
    mode: VectorMode,
    pc: u64,
) -> (MemResult, VectorValue) {
    assert!(len <= 64, "one vector register's worth");
    // The data path is shared: the hierarchy load already substitutes
    // zeros and reports the first violating byte.
    let r = hierarchy.load(addr, len, pc);
    // Reconstruct the per-byte poison from the functional view (the
    // hardware gets this from the L1 bit vector directly).
    let mut poison = 0u64;
    for i in 0..len {
        if hierarchy.peek_is_security_byte(addr + i as u64) {
            poison |= 1 << i;
        }
    }
    let value = VectorValue {
        data: r.data.clone(),
        poison: if mode == VectorMode::Propagate {
            poison
        } else {
            0
        },
    };
    let result = match mode {
        // Precise: identical to scalar semantics — the exception (if any)
        // is the per-byte one the load already produced.
        VectorMode::Precise => r,
        // TrapOnAny: same trigger condition here (any security byte in
        // range), but the trap is immediate and indiscriminate — the
        // difference shows up in false-positive accounting, not in this
        // single-access API.
        VectorMode::TrapOnAny => MemResult {
            exception: (poison != 0).then(|| CaliformsException {
                fault_addr: addr + poison.trailing_zeros() as u64,
                access: AccessKind::Load,
                kind: ExceptionKind::SecurityByteAccess,
                pc,
            }),
            ..r
        },
        // Propagate: the load itself never faults; poison travels in the
        // register.
        VectorMode::Propagate => MemResult {
            exception: None,
            ..r
        },
    };
    (result, value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::HierarchyConfig;
    use califorms_core::CformInstruction;

    fn hier_with_span() -> (Hierarchy, u64) {
        let mut h = Hierarchy::new(HierarchyConfig::westmere());
        let base = 0x7000u64;
        h.store(base, &[0x11; 32], 0);
        // Span at bytes 16..19.
        h.cform(&CformInstruction::set(base, 0b111 << 16), 0);
        (h, base)
    }

    #[test]
    fn precise_mode_matches_scalar_semantics() {
        let (mut h, base) = hier_with_span();
        let (r, v) = vector_load(&mut h, base, 32, VectorMode::Precise, 0);
        assert!(r.exception.is_some());
        assert_eq!(r.exception.unwrap().fault_addr, base + 16);
        assert_eq!(r.data[16], 0, "zero substituted");
        assert_eq!(r.data[15], 0x11);
        assert_eq!(v.poison, 0, "no poison tracking in precise mode");
    }

    #[test]
    fn trap_on_any_faults_even_on_clean_lanes_present() {
        let (mut h, base) = hier_with_span();
        let (r, _) = vector_load(&mut h, base, 32, VectorMode::TrapOnAny, 0);
        assert!(r.exception.is_some());
        // A vector load that misses the span entirely is clean.
        let (r, _) = vector_load(&mut h, base, 16, VectorMode::TrapOnAny, 0);
        assert!(r.exception.is_none());
    }

    #[test]
    fn propagate_defers_to_use() {
        let (mut h, base) = hier_with_span();
        let (r, v) = vector_load(&mut h, base, 32, VectorMode::Propagate, 0);
        assert!(r.exception.is_none(), "load never faults");
        assert_eq!(v.poison, 0b111 << 16);
        // Using only the clean lower lanes: fine.
        assert_eq!(v.use_lanes(0xFFFF), None);
        // Consuming a poisoned lane faults.
        assert_eq!(v.use_lanes(1 << 17), Some(1 << 17));
        // Poisoned lanes read zero (no data leak even before use).
        assert_eq!(v.data[17], 0);
    }

    #[test]
    fn clean_vectors_are_clean_in_every_mode() {
        for mode in [
            VectorMode::Precise,
            VectorMode::TrapOnAny,
            VectorMode::Propagate,
        ] {
            let mut h = Hierarchy::new(HierarchyConfig::westmere());
            h.store(0x9000, &[3; 64], 0);
            let (r, v) = vector_load(&mut h, 0x9000, 64, mode, 0);
            assert!(r.exception.is_none(), "{mode:?}");
            assert_eq!(v.poison, 0);
            assert_eq!(r.data, vec![3; 64]);
        }
    }
}
