//! Bridge between the simulator's statistics and the
//! `califorms-telemetry` counter registry (DESIGN.md §13).
//!
//! Everything in here is a pure function of already-deterministic inputs
//! ([`SimStats`], [`MulticoreStats`], the per-shard snapshots), so the
//! snapshots it produces are **bit-identical across runs** — two replays
//! of the same trace yield byte-equal [`CounterSnapshot::to_bytes`]
//! buffers, which is exactly what the cross-run determinism tests and the
//! oracle diff.
//!
//! Counter naming: `family.event`, with the registry lane carrying the
//! per-core or per-shard axis. Per-core families (`core.*`, `l1d.*`,
//! `weave.*`, `decode.*`, `exceptions.*`) use lane = core id; per-shard
//! families (`dir.*`, `spill.*`, `fill.*`, `weave_shard.*`, `l2.*`,
//! `l3.*`, `dram.*`) use lane = directory-shard/bank id; `runtime.*` and
//! `coherence.*` are global (lane 0). Single-core snapshots use lane 0
//! everywhere. `core.cycles_fp_bits` stores the *bit pattern* of the
//! fractional cycle counter (`f64::to_bits`), so cycle counts join the
//! byte-exact comparison without rounding.

use crate::coherence::DirectoryShardStats;
use crate::hierarchy::BankLevelStats;
use crate::lsq::LsqStats;
use crate::stats::{CacheStats, MulticoreStats, SimStats};
use califorms_telemetry::CounterRegistry;

/// Bytes of a cache line — the `spill.bytes` / `fill.bytes` multiplier
/// (every spill/fill conversion moves exactly one line).
const LINE: u64 = crate::LINE_BYTES;

/// Adds one cache's hit/miss/eviction/writeback counters under `family`
/// at `lane`.
fn cache_lanes(reg: &mut CounterRegistry, family: &str, lane: usize, s: &CacheStats) {
    reg.set(&format!("{family}.hits"), lane, s.hits);
    reg.set(&format!("{family}.misses"), lane, s.misses);
    reg.set(&format!("{family}.evictions"), lane, s.evictions);
    reg.set(&format!("{family}.writebacks"), lane, s.writebacks);
}

/// Adds one core's architectural counters at `lane`.
fn core_lanes(reg: &mut CounterRegistry, lane: usize, s: &SimStats) {
    reg.set("core.instructions", lane, s.instructions);
    reg.set("core.loads", lane, s.loads);
    reg.set("core.stores", lane, s.stores);
    reg.set("core.cforms", lane, s.cforms);
    reg.set("core.stores_suppressed", lane, s.stores_suppressed);
    reg.set("core.cycles_fp_bits", lane, s.cycles.to_bits());
    reg.set("exceptions.delivered", lane, s.exceptions_delivered);
    reg.set("exceptions.suppressed", lane, s.exceptions_suppressed);
    cache_lanes(reg, "l1d", lane, &s.l1d);
}

/// Builds the deterministic counter registry of a multi-core run.
///
/// `decode` carries per-core `(ops, bytes)` pack-decode progress; pass an
/// empty slice for runs replaying materialised shards (the `decode.*`
/// counters are then omitted entirely, keeping snapshots of packed and
/// unpacked replays comparable on their shared families).
pub fn multicore_counters(
    stats: &MulticoreStats,
    shards: &[DirectoryShardStats],
    banks: &[BankLevelStats],
    decode: &[(u64, u64)],
) -> CounterRegistry {
    let mut reg = CounterRegistry::new();

    for (c, s) in stats.per_core.iter().enumerate() {
        core_lanes(&mut reg, c, s);
    }
    for (c, w) in stats.weave.per_core.iter().enumerate() {
        reg.set("weave.turns", c, w.turns);
        reg.set("weave.transactions", c, w.transactions);
        reg.set("weave.batched", c, w.batched);
        reg.set("weave.contended", c, w.contended);
    }
    for (c, (ops, bytes)) in decode.iter().enumerate() {
        reg.set("decode.ops", c, *ops);
        reg.set("decode.bytes", c, *bytes);
    }

    for (b, sh) in shards.iter().enumerate() {
        reg.set("dir.lookups", b, sh.lookups);
        reg.set("dir.upgrades", b, sh.upgrades);
        reg.set("spill.lines", b, sh.spills);
        reg.set("spill.bytes", b, sh.spills * LINE);
        reg.set("fill.lines", b, sh.fills);
        reg.set("fill.bytes", b, sh.fills * LINE);
        reg.set("weave_shard.transactions", b, sh.weave_transactions);
        reg.set("weave_shard.batched", b, sh.weave_batched);
        reg.set("weave_shard.contended", b, sh.weave_contended);
    }
    for (b, bank) in banks.iter().enumerate() {
        cache_lanes(&mut reg, "l2", b, &bank.l2);
        cache_lanes(&mut reg, "l3", b, &bank.l3);
        reg.set("dram.accesses", b, bank.dram_accesses);
        reg.set("l2.resident_lines", b, bank.l2_resident_lines);
        reg.set("l3.resident_lines", b, bank.l3_resident_lines);
    }

    reg.set("runtime.quanta", 0, stats.runtime.quanta);
    reg.set("runtime.barrier_waits", 0, stats.runtime.barrier_waits);
    let c = &stats.combined.coherence;
    reg.set("coherence.invalidations", 0, c.invalidations);
    reg.set("coherence.upgrades_s_to_m", 0, c.upgrades_s_to_m);
    reg.set("coherence.c2c_transfers", 0, c.cache_to_cache_transfers);
    reg.set("coherence.califormed_transfers", 0, c.califormed_transfers);
    reg.set("coherence.directory_lookups", 0, c.directory_lookups);
    reg
}

/// Builds the deterministic counter registry of a single-core
/// [`crate::engine::Engine`] run (all lanes 0). `decode` is the pack
/// decoder's `(ops, bytes)` progress, or `None` for unpacked replay.
pub fn single_core_counters(stats: &SimStats, decode: Option<(u64, u64)>) -> CounterRegistry {
    let mut reg = CounterRegistry::new();
    core_lanes(&mut reg, 0, stats);
    cache_lanes(&mut reg, "l2", 0, &stats.l2);
    cache_lanes(&mut reg, "l3", 0, &stats.l3);
    reg.set("dram.accesses", 0, stats.dram_accesses);
    reg.set("spill.lines", 0, stats.spills);
    reg.set("spill.bytes", 0, stats.spills * LINE);
    reg.set("fill.lines", 0, stats.fills);
    reg.set("fill.bytes", 0, stats.fills * LINE);
    if let Some((ops, bytes)) = decode {
        reg.set("decode.ops", 0, ops);
        reg.set("decode.bytes", 0, bytes);
    }
    reg
}

/// Adds a [`crate::lsq::LoadStoreQueue`]'s counters at `lane` — the LSQ
/// stall/forward split the pipeline-semantics tests assert on.
pub fn lsq_lanes(reg: &mut CounterRegistry, lane: usize, s: &LsqStats) {
    reg.set("lsq.loads_resolved", lane, s.loads_resolved);
    reg.set("lsq.forwards", lane, s.forwards);
    reg.set("lsq.stalls", lane, s.partial_overlap_stalls);
    reg.set("lsq.cform_matches", lane, s.cform_matches);
    reg.set("lsq.store_cform_conflicts", lane, s.store_cform_conflicts);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lsq::LoadStoreQueue;

    #[test]
    fn single_core_registry_has_the_core_families() {
        let stats = SimStats {
            instructions: 100,
            loads: 40,
            spills: 3,
            cycles: 123.5,
            ..SimStats::default()
        };
        let snap = single_core_counters(&stats, Some((100, 321))).snapshot();
        assert_eq!(snap.total("core.instructions"), Some(100));
        assert_eq!(snap.total("spill.bytes"), Some(3 * LINE));
        assert_eq!(snap.total("decode.bytes"), Some(321));
        assert_eq!(snap.total("core.cycles_fp_bits"), Some(123.5f64.to_bits()));
    }

    #[test]
    fn unpacked_replay_omits_decode_counters() {
        let snap = single_core_counters(&SimStats::default(), None).snapshot();
        assert_eq!(snap.total("decode.ops"), None);
    }

    #[test]
    fn lsq_lanes_expose_the_stall_split() {
        let mut q = LoadStoreQueue::new();
        q.push_store(0x100, vec![1, 2]);
        let _ = q.resolve_load(0x101, 4); // partial overlap → stall
        let mut reg = CounterRegistry::new();
        lsq_lanes(&mut reg, 0, &q.stats());
        let snap = reg.snapshot();
        assert_eq!(snap.total("lsq.stalls"), Some(1));
        assert_eq!(snap.total("lsq.loads_resolved"), Some(1));
    }
}
