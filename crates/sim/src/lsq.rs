//! Load/store-queue semantics for in-flight `CFORM` instructions
//! (Section 5.3).
//!
//! `CFORM` is handled like a store in the pipeline, with one crucial
//! difference: it must **never** forward a value to a younger load whose
//! address matches — the load receives **zero** instead, and both loads and
//! stores younger than an in-flight `CFORM` that touch its bytes are marked
//! for a Califorms exception at commit. This is the tamper-resistance rule
//! that stops an attacker from using store-to-load forwarding as a side
//! channel to observe califorming in flight.
//!
//! The model is functional (the paper argues the CFORM match is off the
//! critical path and has no timing effect); the engine and the security
//! tests use it to check the forwarding rules.

use crate::{line_base, LINE_BYTES};
use std::collections::VecDeque;

/// An entry occupying the LSQ, oldest first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LsqEntry {
    /// An in-flight store: address, data.
    Store {
        /// Byte address of the store.
        addr: u64,
        /// Store payload.
        data: Vec<u8>,
    },
    /// An in-flight `CFORM`: line address plus the bytes whose state it
    /// changes (attributes ∧ mask — the "to-be-califormed" bytes the match
    /// logic checks).
    Cform {
        /// Cache-line-aligned target address.
        line_addr: u64,
        /// Bit `i` set ⇒ byte `i` of the line is being (un)califormed.
        affected: u64,
    },
}

/// What the LSQ tells a younger load about its address match.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ForwardResult {
    /// No older in-flight entry overlaps: go to the cache.
    NoMatch,
    /// A store fully covers the load: forward its bytes.
    Forwarded(Vec<u8>),
    /// A store partially overlaps: stall/replay (modelled as going to the
    /// cache after the store drains; no data here).
    PartialOverlap,
    /// The youngest overlapping entry is a `CFORM`: the load receives
    /// zeros and is marked for a Califorms exception at commit.
    CformMatch {
        /// The zeros handed to the load.
        data: Vec<u8>,
    },
}

/// Whether an in-flight `CFORM` over `line_addr` with to-be-califormed
/// byte mask `affected` overlaps the byte range `[lo, hi)` — first a
/// (cheap) line-address match, then the mask confirms the byte overlap:
/// the two-step match of Section 5.3.
fn cform_overlaps(line_addr: u64, affected: u64, lo: u64, hi: u64) -> bool {
    if line_base(lo) != line_addr && line_base(hi - 1) != line_addr {
        return false;
    }
    for a in lo..hi {
        if line_base(a) == line_addr && affected >> (a - line_addr) & 1 == 1 {
            return true;
        }
    }
    false
}

/// Deterministic LSQ activity counters: pure functions of the op stream,
/// so they can ride in telemetry snapshots and bit-identity diffs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LsqStats {
    /// Loads resolved against the queue.
    pub loads_resolved: u64,
    /// Loads fully forwarded from an in-flight store.
    pub forwards: u64,
    /// Loads stalled on a partial store overlap (replay after drain).
    pub partial_overlap_stalls: u64,
    /// Loads zeroed by an in-flight `CFORM` match.
    pub cform_matches: u64,
    /// Younger stores flagged against an in-flight `CFORM`.
    pub store_cform_conflicts: u64,
}

/// A program-ordered load/store queue.
///
/// Entries live in a `VecDeque` so commit-time retirement
/// ([`Self::retire_oldest`]) pops the front in O(1) — with a `Vec`,
/// `remove(0)` shifts the whole queue and draining a full LSQ under load
/// is quadratic.
#[derive(Debug, Default)]
pub struct LoadStoreQueue {
    entries: VecDeque<LsqEntry>,
    stats: LsqStats,
}

impl LoadStoreQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of in-flight entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts an in-flight store (program order: youngest last).
    pub fn push_store(&mut self, addr: u64, data: Vec<u8>) {
        self.entries.push_back(LsqEntry::Store { addr, data });
    }

    /// Inserts an in-flight `CFORM`. Each LSQ entry carries a "is CFORM"
    /// bit in hardware; here it is the enum discriminant.
    pub fn push_cform(&mut self, line_addr: u64, affected: u64) {
        assert_eq!(line_addr % LINE_BYTES, 0, "CFORM targets a full line");
        self.entries.push_back(LsqEntry::Cform {
            line_addr,
            affected,
        });
    }

    /// Resolves a younger load against the queue: scans from the youngest
    /// older entry, returning the first overlap's verdict.
    pub fn resolve_load(&mut self, addr: u64, len: usize) -> ForwardResult {
        self.stats.loads_resolved += 1;
        let lo = addr;
        let hi = addr + len as u64;
        for entry in self.entries.iter().rev() {
            match entry {
                LsqEntry::Store { addr: sa, data } => {
                    let slo = *sa;
                    let shi = *sa + data.len() as u64;
                    if hi <= slo || lo >= shi {
                        continue;
                    }
                    if slo <= lo && hi <= shi {
                        let start = (lo - slo) as usize;
                        self.stats.forwards += 1;
                        return ForwardResult::Forwarded(data[start..start + len].to_vec());
                    }
                    self.stats.partial_overlap_stalls += 1;
                    return ForwardResult::PartialOverlap;
                }
                LsqEntry::Cform {
                    line_addr,
                    affected,
                } => {
                    if cform_overlaps(*line_addr, *affected, lo, hi) {
                        self.stats.cform_matches += 1;
                        return ForwardResult::CformMatch { data: vec![0; len] };
                    }
                }
            }
        }
        ForwardResult::NoMatch
    }

    /// Whether a younger **store** to `[addr, addr+len)` must be marked for
    /// a Califorms exception (it follows an in-flight `CFORM` touching the
    /// same bytes).
    ///
    /// Every older in-flight `CFORM` is checked, not just the youngest
    /// overlapping entry: a store's exception mark depends on *any* older
    /// `CFORM` touching its bytes, so an intervening in-flight store to
    /// the same bytes must not mask the conflict. (Delegating to
    /// [`Self::resolve_load`] did exactly that — its scan stops at the
    /// youngest overlapping store, which is correct for forwarding but
    /// let a store younger than both escape its commit-time mark.)
    pub fn store_conflicts_with_cform(&mut self, addr: u64, len: usize) -> bool {
        let lo = addr;
        let hi = addr + len as u64;
        let conflict = self.entries.iter().any(|entry| match entry {
            LsqEntry::Cform {
                line_addr,
                affected,
            } => cform_overlaps(*line_addr, *affected, lo, hi),
            LsqEntry::Store { .. } => false,
        });
        if conflict {
            self.stats.store_cform_conflicts += 1;
        }
        conflict
    }

    /// Deterministic activity counters accumulated so far.
    pub fn stats(&self) -> LsqStats {
        self.stats
    }

    /// Drains the oldest entry (commit). O(1): the queue is a `VecDeque`.
    pub fn retire_oldest(&mut self) -> Option<LsqEntry> {
        self.entries.pop_front()
    }

    /// Memory-serialising barrier: drains everything (the paper's
    /// LSQ-modification-free alternative).
    pub fn drain_all(&mut self) -> Vec<LsqEntry> {
        std::mem::take(&mut self.entries).into_iter().collect()
    }
}

// --- checkpoint serialization -----------------------------------------

use crate::checkpoint::{self as ck, CheckpointError};

impl LoadStoreQueue {
    /// Serializes the in-flight entries (program order) and the activity
    /// counters (the optional `SEC_LSQ` checkpoint payload).
    pub(crate) fn save_state(&self, w: &mut ck::Wr) {
        w.u64(self.entries.len() as u64);
        for entry in &self.entries {
            match entry {
                LsqEntry::Store { addr, data } => {
                    w.u8(0);
                    w.u64(*addr);
                    w.u64(data.len() as u64);
                    w.bytes(data);
                }
                LsqEntry::Cform {
                    line_addr,
                    affected,
                } => {
                    w.u8(1);
                    w.u64(*line_addr);
                    w.u64(*affected);
                }
            }
        }
        w.u64(self.stats.loads_resolved);
        w.u64(self.stats.forwards);
        w.u64(self.stats.partial_overlap_stalls);
        w.u64(self.stats.cform_matches);
        w.u64(self.stats.store_cform_conflicts);
    }

    pub(crate) fn restore_state(r: &mut ck::Rd<'_>) -> ck::Result<Self> {
        let n = r.count()?;
        let mut q = LoadStoreQueue::new();
        for _ in 0..n {
            let entry = match r.u8()? {
                0 => {
                    let addr = r.u64()?;
                    let len = r.count()?;
                    LsqEntry::Store {
                        addr,
                        data: r.take(len)?.to_vec(),
                    }
                }
                1 => {
                    let line_addr = r.u64()?;
                    if line_addr % LINE_BYTES != 0 {
                        return Err(CheckpointError::Corrupt("LSQ CFORM address unaligned"));
                    }
                    LsqEntry::Cform {
                        line_addr,
                        affected: r.u64()?,
                    }
                }
                _ => return Err(CheckpointError::Corrupt("unknown LSQ entry tag")),
            };
            q.entries.push_back(entry);
        }
        q.stats = LsqStats {
            loads_resolved: r.u64()?,
            forwards: r.u64()?,
            partial_overlap_stalls: r.u64()?,
            cform_matches: r.u64()?,
            store_cform_conflicts: r.u64()?,
        };
        Ok(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_forwards_to_covered_load() {
        let mut q = LoadStoreQueue::new();
        q.push_store(0x100, vec![1, 2, 3, 4]);
        assert_eq!(
            q.resolve_load(0x101, 2),
            ForwardResult::Forwarded(vec![2, 3])
        );
    }

    #[test]
    fn partial_overlap_is_not_forwarded() {
        let mut q = LoadStoreQueue::new();
        q.push_store(0x100, vec![1, 2]);
        assert_eq!(q.resolve_load(0x101, 4), ForwardResult::PartialOverlap);
    }

    #[test]
    fn cform_never_forwards_returns_zeros() {
        let mut q = LoadStoreQueue::new();
        q.push_cform(0x1000, 1 << 8 | 1 << 9);
        match q.resolve_load(0x1008, 2) {
            ForwardResult::CformMatch { data } => assert_eq!(data, vec![0, 0]),
            other => panic!("expected CformMatch, got {other:?}"),
        }
    }

    #[test]
    fn cform_without_byte_overlap_is_no_match() {
        let mut q = LoadStoreQueue::new();
        q.push_cform(0x1000, 1 << 8);
        assert_eq!(q.resolve_load(0x1010, 4), ForwardResult::NoMatch);
    }

    #[test]
    fn youngest_matching_entry_wins() {
        let mut q = LoadStoreQueue::new();
        q.push_store(0x1008, vec![7, 7]);
        q.push_cform(0x1000, 1 << 8 | 1 << 9);
        // CFORM is younger than the store: the load sees the CFORM.
        assert!(matches!(
            q.resolve_load(0x1008, 2),
            ForwardResult::CformMatch { .. }
        ));
        // Reverse order: store younger than CFORM forwards normally.
        let mut q = LoadStoreQueue::new();
        q.push_cform(0x1000, 1 << 8 | 1 << 9);
        q.push_store(0x1008, vec![7, 7]);
        assert_eq!(
            q.resolve_load(0x1008, 2),
            ForwardResult::Forwarded(vec![7, 7])
        );
    }

    #[test]
    fn younger_store_conflict_is_flagged() {
        let mut q = LoadStoreQueue::new();
        q.push_cform(0x1000, 0xFF);
        assert!(q.store_conflicts_with_cform(0x1000, 4));
        assert!(!q.store_conflicts_with_cform(0x1000 + 8, 4));
    }

    #[test]
    fn retire_and_drain() {
        let mut q = LoadStoreQueue::new();
        q.push_store(0, vec![1]);
        q.push_cform(0x40, 1);
        assert_eq!(q.len(), 2);
        assert!(matches!(q.retire_oldest(), Some(LsqEntry::Store { .. })));
        let rest = q.drain_all();
        assert_eq!(rest.len(), 1);
        assert!(q.is_empty());
    }

    #[test]
    fn line_crossing_load_matches_cform_in_second_line() {
        let mut q = LoadStoreQueue::new();
        q.push_cform(0x1040, 1); // byte 0 of the second line
        assert!(matches!(
            q.resolve_load(0x1030, 32),
            ForwardResult::CformMatch { .. }
        ));
    }

    /// Regression (Section 5.3 masking bug): a store younger than both an
    /// in-flight `CFORM` and an intervening in-flight store to the same
    /// bytes must still be flagged. The old implementation delegated to
    /// `resolve_load`, whose youngest-first scan stopped at the
    /// intervening store and reported no conflict.
    #[test]
    fn cform_conflict_is_not_masked_by_younger_inflight_store() {
        let mut q = LoadStoreQueue::new();
        q.push_cform(0x1000, 0xFF); // CFORM over bytes 0..8
        q.push_store(0x1000, vec![7; 4]); // store A, same bytes, younger
                                          // Store B to the same bytes: the CFORM conflict must survive A.
        assert!(
            q.store_conflicts_with_cform(0x1000, 4),
            "an in-flight store must not mask an older CFORM conflict"
        );
        // A load, by contrast, correctly sees store A first (forwarding).
        assert_eq!(
            q.resolve_load(0x1000, 4),
            ForwardResult::Forwarded(vec![7; 4])
        );
        // Bytes the CFORM does not touch stay conflict-free.
        assert!(!q.store_conflicts_with_cform(0x1008, 4));
    }

    /// A store whose only overlap with an in-flight `CFORM` sits in the
    /// *second* line of a line-crossing range is still flagged.
    #[test]
    fn line_crossing_store_conflict_in_second_line() {
        let mut q = LoadStoreQueue::new();
        q.push_cform(0x1040, 0b100); // byte 2 of the second line
        q.push_store(0x1020, vec![1; 8]); // unrelated younger store
        assert!(q.store_conflicts_with_cform(0x1030, 32)); // 0x1030..0x1050
        assert!(!q.store_conflicts_with_cform(0x1030, 16)); // stops at 0x1040
    }

    /// Line-crossing loads against an in-flight `CFORM` whose affected
    /// bytes sit only in the second line: byte-granular `CformMatch` when
    /// the range reaches the byte, `NoMatch` when it stops short
    /// (exercises the `line_base(hi - 1)` arm of the two-step match).
    #[test]
    fn line_crossing_load_byte_granular_second_line_match() {
        let mut q = LoadStoreQueue::new();
        q.push_cform(0x1040, 1 << 2); // byte 0x1042 only
                                      // 0x103C..0x1044 crosses into the second line and covers 0x1042.
        match q.resolve_load(0x103C, 8) {
            ForwardResult::CformMatch { data } => assert_eq!(data, vec![0; 8]),
            other => panic!("expected CformMatch, got {other:?}"),
        }
        // 0x103C..0x1042 crosses the boundary but stops one byte short.
        assert_eq!(q.resolve_load(0x103C, 6), ForwardResult::NoMatch);
        // Same-length range entirely inside the first line: no match.
        assert_eq!(q.resolve_load(0x1030, 8), ForwardResult::NoMatch);
    }

    #[test]
    fn stats_count_each_resolution_kind() {
        let mut q = LoadStoreQueue::new();
        q.push_store(0x100, vec![1, 2, 3, 4]);
        q.push_cform(0x1000, 0xFF);
        let _ = q.resolve_load(0x100, 4); // forwarded
        let _ = q.resolve_load(0x102, 4); // partial overlap
        let _ = q.resolve_load(0x1000, 2); // CFORM match
        let _ = q.resolve_load(0x9000, 2); // no match
        assert!(q.store_conflicts_with_cform(0x1000, 4));
        assert!(!q.store_conflicts_with_cform(0x2000, 4));
        let s = q.stats();
        assert_eq!(s.loads_resolved, 4);
        assert_eq!(s.forwards, 1);
        assert_eq!(s.partial_overlap_stalls, 1);
        assert_eq!(s.cform_matches, 1);
        assert_eq!(s.store_cform_conflicts, 1);
    }

    #[test]
    fn retire_drains_in_fifo_order_under_load() {
        let mut q = LoadStoreQueue::new();
        for i in 0..1000u64 {
            q.push_store(i * 8, vec![i as u8]);
        }
        for i in 0..1000u64 {
            match q.retire_oldest() {
                Some(LsqEntry::Store { addr, .. }) => assert_eq!(addr, i * 8),
                other => panic!("expected store, got {other:?}"),
            }
        }
        assert!(q.retire_oldest().is_none());
    }
}
