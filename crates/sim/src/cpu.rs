//! Core timing model.
//!
//! A deliberately simple out-of-order abstraction: the core retires up to
//! `width` instructions per cycle, and a fraction `overlap` of every
//! beyond-L1 memory latency is hidden by the instruction window (memory
//! level parallelism + independent work). L1 hits are fully pipelined.
//!
//! This is the standard first-order model for trace-driven studies: it
//! does not predict absolute IPC, but it propagates *relative* changes in
//! cache behaviour — which is all the paper's Figures 4 and 10–12 measure
//! — and it lets workload profiles express their memory-boundedness
//! through `overlap` (a pointer-chasing workload hides almost nothing; a
//! streaming workload hides almost everything).

/// Core timing parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreConfig {
    /// Retire width (instructions per cycle), Westmere-like default 4.
    pub width: u32,
    /// Fraction of beyond-L1 miss latency hidden by the OoO window,
    /// in `[0, 1)`.
    pub overlap: f64,
}

impl CoreConfig {
    /// Westmere-like defaults: 4-wide, 60 % of miss latency hidden.
    pub fn westmere() -> Self {
        Self {
            width: 4,
            overlap: 0.6,
        }
    }

    /// Same core with a different overlap (workload-specific
    /// memory-boundedness).
    pub fn with_overlap(self, overlap: f64) -> Self {
        assert!((0.0..1.0).contains(&overlap), "overlap must be in [0,1)");
        Self { overlap, ..self }
    }

    /// Cycles to retire `n` plain instructions.
    pub fn exec_cycles(&self, n: u64) -> f64 {
        n as f64 / f64::from(self.width)
    }

    /// Stall cycles charged for a memory access of total `latency`, given
    /// the L1 hit latency `l1_latency`: L1 hits are free (pipelined);
    /// beyond-L1 latency is charged at `1 − overlap`.
    pub fn memory_stall(&self, latency: u32, l1_latency: u32) -> f64 {
        if latency <= l1_latency {
            0.0
        } else {
            f64::from(latency - l1_latency) * (1.0 - self.overlap)
        }
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self::westmere()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exec_cycles_respect_width() {
        let c = CoreConfig::westmere();
        assert!((c.exec_cycles(8) - 2.0).abs() < 1e-12);
        assert!((c.exec_cycles(1) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn l1_hits_are_free() {
        let c = CoreConfig::westmere();
        assert_eq!(c.memory_stall(4, 4), 0.0);
        assert_eq!(c.memory_stall(3, 4), 0.0);
    }

    #[test]
    fn misses_are_charged_at_one_minus_overlap() {
        let c = CoreConfig::westmere().with_overlap(0.5);
        assert!((c.memory_stall(4 + 7, 4) - 3.5).abs() < 1e-12);
    }

    #[test]
    fn zero_overlap_charges_full_latency() {
        let c = CoreConfig::westmere().with_overlap(0.0);
        assert!((c.memory_stall(238, 4) - 234.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "overlap must be in")]
    fn overlap_out_of_range_panics() {
        CoreConfig::westmere().with_overlap(1.0);
    }
}
