//! A generic set-associative, write-back cache with true-LRU replacement.
//!
//! The cache is generic over its line payload so the L1 can hold
//! [`califorms_core::L1Line`] (bitvector format) while L2/L3 hold
//! [`califorms_core::L2Line`] (sentinel format) — the format conversion at
//! the boundary is then *forced* by the types, mirroring the hardware.

use crate::stats::CacheStats;
use crate::LINE_BYTES;

/// A line evicted to make room for an insertion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Eviction<V> {
    /// Line base address of the victim.
    pub line_addr: u64,
    /// Victim payload.
    pub value: V,
    /// Whether the victim was dirty (must be written back).
    pub dirty: bool,
}

#[derive(Debug, Clone)]
struct Entry<V> {
    tag: u64,
    /// Recency stamp: strictly increasing across the cache, bumped on
    /// every (architectural or internal) touch. The eviction victim is
    /// the set's minimum stamp — exactly the least recently used line.
    stamp: u64,
    dirty: bool,
    value: V,
}

/// Set-associative cache keyed by 64 B line address.
///
/// True-LRU replacement is tracked with per-entry recency stamps rather
/// than by keeping each set sorted: a hit bumps one `u64` instead of
/// rotating the set's entries (`Vec::remove` + `insert` memmoves of
/// line-sized payloads), which keeps the replay hot path to a single
/// set scan per access. Victim selection is identical to the sorted
/// form — stamps are unique and monotonic, so min-stamp = LRU.
#[derive(Debug, Clone)]
pub struct SetAssocCache<V> {
    sets: Vec<Vec<Entry<V>>>,
    ways: usize,
    clock: u64,
    /// Hit latency in cycles, exposed for the hierarchy's accounting.
    pub latency: u32,
    /// Hit/miss/eviction counters.
    pub stats: CacheStats,
}

/// A line found by [`SetAssocCache::access_entry`]: the payload plus its
/// dirty bit, so read-modify-write accesses (the store hot path) can set
/// dirtiness without a second set scan.
#[derive(Debug)]
pub struct AccessedLine<'a, V> {
    /// The line payload.
    pub value: &'a mut V,
    /// The line's dirty (must-write-back) bit.
    pub dirty: &'a mut bool,
}

impl<V> SetAssocCache<V> {
    /// Creates a cache of `size_bytes` capacity with `ways` ways and the
    /// given hit latency.
    ///
    /// # Panics
    ///
    /// Panics unless `size_bytes` is a multiple of `ways * 64` and the
    /// resulting set count is a power of two (hardware indexing).
    pub fn new(size_bytes: usize, ways: usize, latency: u32) -> Self {
        assert!(ways > 0, "cache must have at least one way");
        let line = LINE_BYTES as usize;
        assert_eq!(size_bytes % (ways * line), 0, "capacity not divisible");
        let set_count = size_bytes / (ways * line);
        assert!(
            set_count.is_power_of_two(),
            "set count must be a power of two"
        );
        Self {
            sets: (0..set_count).map(|_| Vec::with_capacity(ways)).collect(),
            ways,
            clock: 0,
            latency,
            stats: CacheStats::default(),
        }
    }

    /// A zero-set placeholder left behind while the real cache is lent to
    /// a bound-phase worker (see `crate::multicore`). Must never be
    /// accessed.
    pub(crate) fn detached() -> Self {
        Self {
            sets: Vec::new(),
            ways: 1,
            clock: 0,
            latency: 0,
            stats: CacheStats::default(),
        }
    }

    /// Number of sets.
    pub fn set_count(&self) -> usize {
        self.sets.len()
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.sets.len() * self.ways * LINE_BYTES as usize
    }

    /// Capacity in lines (the telemetry occupancy denominator).
    pub fn capacity_lines(&self) -> usize {
        self.sets.len() * self.ways
    }

    /// Fraction of line slots occupied, in `[0, 1]` (0 for a detached
    /// stand-in cache, which has no sets).
    pub fn occupancy(&self) -> f64 {
        let cap = self.capacity_lines();
        if cap == 0 {
            0.0
        } else {
            self.resident_lines() as f64 / cap as f64
        }
    }

    fn index(&self, line_addr: u64) -> (usize, u64) {
        let line_no = line_addr / LINE_BYTES;
        let set = (line_no as usize) & (self.sets.len() - 1);
        let tag = line_no / self.sets.len() as u64;
        (set, tag)
    }

    /// Looks up a line, updating LRU and hit/miss counters.
    ///
    /// Returns a mutable reference to the payload on a hit.
    pub fn access(&mut self, line_addr: u64) -> Option<&mut V> {
        Some(self.access_entry(line_addr)?.value)
    }

    /// Looks up a line, updating LRU and hit/miss counters, exposing the
    /// dirty bit alongside the payload — the store hot path marks lines
    /// dirty through this without a second set scan.
    pub fn access_entry(&mut self, line_addr: u64) -> Option<AccessedLine<'_, V>> {
        let (set_idx, tag) = self.index(line_addr);
        self.clock += 1;
        let clock = self.clock;
        let set = &mut self.sets[set_idx];
        match set.iter_mut().find(|e| e.tag == tag) {
            Some(e) => {
                self.stats.hits += 1;
                e.stamp = clock;
                Some(AccessedLine {
                    value: &mut e.value,
                    dirty: &mut e.dirty,
                })
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Looks up a line, updating LRU but **not** the hit/miss counters,
    /// exposing the dirty bit alongside the payload. The caller decides
    /// whether (and how) to count the access — the multi-core L1 fast
    /// paths use this to probe once and count a hit only when the access
    /// actually completes locally, leaving the miss count to whichever
    /// phase services it.
    pub(crate) fn probe_entry(&mut self, line_addr: u64) -> Option<AccessedLine<'_, V>> {
        let (set_idx, tag) = self.index(line_addr);
        self.clock += 1;
        let clock = self.clock;
        let e = self.sets[set_idx].iter_mut().find(|e| e.tag == tag)?;
        e.stamp = clock;
        Some(AccessedLine {
            value: &mut e.value,
            dirty: &mut e.dirty,
        })
    }

    /// Looks up a line, updating LRU but **not** the hit/miss counters.
    ///
    /// For multi-step operations (fill then write, read-modify-write) that
    /// are one architectural access but several internal touches.
    pub fn access_uncounted(&mut self, line_addr: u64) -> Option<&mut V> {
        let (set_idx, tag) = self.index(line_addr);
        self.clock += 1;
        let clock = self.clock;
        let e = self.sets[set_idx].iter_mut().find(|e| e.tag == tag)?;
        e.stamp = clock;
        Some(&mut e.value)
    }

    /// Looks up a line without affecting LRU order or counters.
    pub fn peek(&self, line_addr: u64) -> Option<&V> {
        let (set_idx, tag) = self.index(line_addr);
        self.sets[set_idx]
            .iter()
            .find(|e| e.tag == tag)
            .map(|e| &e.value)
    }

    /// Looks up a line mutably without affecting LRU order or counters.
    ///
    /// The coherence controller uses this to downgrade or probe remote
    /// copies: a directory-induced state change is not an architectural
    /// access by the owning core and must not perturb its LRU or counters.
    pub fn peek_mut(&mut self, line_addr: u64) -> Option<&mut V> {
        let (set_idx, tag) = self.index(line_addr);
        self.sets[set_idx]
            .iter_mut()
            .find(|e| e.tag == tag)
            .map(|e| &mut e.value)
    }

    /// Marks a resident line dirty (no-op if absent).
    pub fn mark_dirty(&mut self, line_addr: u64) {
        let (set_idx, tag) = self.index(line_addr);
        if let Some(e) = self.sets[set_idx].iter_mut().find(|e| e.tag == tag) {
            e.dirty = true;
        }
    }

    /// Clears a resident line's dirty bit (no-op if absent) — used when a
    /// coherence downgrade writes the line back but keeps it Shared.
    pub fn clear_dirty(&mut self, line_addr: u64) {
        let (set_idx, tag) = self.index(line_addr);
        if let Some(e) = self.sets[set_idx].iter_mut().find(|e| e.tag == tag) {
            e.dirty = false;
        }
    }

    /// Whether a resident line is dirty (`None` if absent).
    pub fn is_dirty(&self, line_addr: u64) -> Option<bool> {
        let (set_idx, tag) = self.index(line_addr);
        self.sets[set_idx]
            .iter()
            .find(|e| e.tag == tag)
            .map(|e| e.dirty)
    }

    /// Inserts (or replaces) a line as MRU, returning the victim if the set
    /// was full.
    pub fn insert(&mut self, line_addr: u64, value: V, dirty: bool) -> Option<Eviction<V>> {
        let (set_idx, tag) = self.index(line_addr);
        self.clock += 1;
        let clock = self.clock;
        let set_count = self.sets.len() as u64;
        let ways = self.ways;
        let set = &mut self.sets[set_idx];
        if let Some(e) = set.iter_mut().find(|e| e.tag == tag) {
            e.value = value;
            e.dirty = e.dirty || dirty;
            e.stamp = clock;
            return None;
        }
        let victim = if set.len() == ways {
            let pos = set
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(i, _)| i)
                // analyze::allow(hot-path-unwrap): a full set always has a victim: the iterator is non-empty
                .expect("full set is non-empty");
            let victim = set.swap_remove(pos);
            self.stats.evictions += 1;
            if victim.dirty {
                self.stats.writebacks += 1;
            }
            let line_no = victim.tag * set_count + set_idx as u64;
            Some(Eviction {
                line_addr: line_no * LINE_BYTES,
                value: victim.value,
                dirty: victim.dirty,
            })
        } else {
            None
        };
        set.push(Entry {
            tag,
            stamp: clock,
            dirty,
            value,
        });
        victim
    }

    /// Removes a line, returning its payload and dirtiness.
    pub fn invalidate(&mut self, line_addr: u64) -> Option<(V, bool)> {
        let (set_idx, tag) = self.index(line_addr);
        let set = &mut self.sets[set_idx];
        set.iter().position(|e| e.tag == tag).map(|pos| {
            let e = set.swap_remove(pos);
            (e.value, e.dirty)
        })
    }

    /// Number of lines currently resident.
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Drains every resident line (for end-of-simulation flush), returning
    /// `(line_addr, payload, dirty)` triples in no particular order.
    pub fn drain(&mut self) -> Vec<(u64, V, bool)> {
        let set_count = self.sets.len() as u64;
        let mut out = Vec::new();
        for (set_idx, set) in self.sets.iter_mut().enumerate() {
            for e in set.drain(..) {
                let line_no = e.tag * set_count + set_idx as u64;
                out.push((line_no * LINE_BYTES, e.value, e.dirty));
            }
        }
        out
    }

    /// The LRU clock (checkpoint serialization; restored by
    /// [`Self::import_lines`]).
    pub(crate) fn clock(&self) -> u64 {
        self.clock
    }

    /// Snapshot of every resident line for checkpointing, in set-major
    /// order and, within a set, in the set `Vec`'s current order. That
    /// order matters: `insert`/`invalidate` use `swap_remove`, so the
    /// within-set order is itself a function of the op history, and a
    /// restore must reproduce it exactly for victim selection (min-stamp
    /// ties cannot occur — stamps are unique — but set-scan order feeds
    /// `find`, so we keep the bit-identity contract conservative).
    pub(crate) fn export_lines(&self) -> Vec<(u64, u64, bool, &V)> {
        let set_count = self.sets.len() as u64;
        let mut out = Vec::with_capacity(self.resident_lines());
        for (set_idx, set) in self.sets.iter().enumerate() {
            for e in set {
                let line_no = e.tag * set_count + set_idx as u64;
                out.push((line_no * LINE_BYTES, e.stamp, e.dirty, &e.value));
            }
        }
        out
    }

    /// Rebuilds the cache contents from an [`Self::export_lines`]
    /// snapshot taken on a cache of identical geometry: clears every
    /// set, restores the LRU clock, and reinserts each line preserving
    /// its stamp, dirty bit and within-set position.
    ///
    /// # Errors
    ///
    /// Returns a message (the checkpoint layer wraps it into its typed
    /// error) when a line's stamp runs ahead of `clock` or a set
    /// overflows its associativity — both only possible with a corrupt
    /// or foreign checkpoint.
    pub(crate) fn import_lines(
        &mut self,
        clock: u64,
        lines: Vec<(u64, u64, bool, V)>,
    ) -> Result<(), &'static str> {
        for set in &mut self.sets {
            set.clear();
        }
        self.clock = clock;
        for (line_addr, stamp, dirty, value) in lines {
            if stamp > clock {
                return Err("cache line stamp ahead of LRU clock");
            }
            if line_addr % LINE_BYTES != 0 {
                return Err("cache line address not line-aligned");
            }
            let (set_idx, tag) = self.index(line_addr);
            let set = &mut self.sets[set_idx];
            if set.len() == self.ways {
                return Err("cache set overflows associativity");
            }
            if set.iter().any(|e| e.tag == tag) {
                return Err("duplicate cache line in checkpoint");
            }
            set.push(Entry {
                tag,
                stamp,
                dirty,
                value,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> SetAssocCache<u32> {
        // 4 sets × 2 ways × 64 B = 512 B
        SetAssocCache::new(512, 2, 4)
    }

    #[test]
    fn geometry_is_derived_from_capacity() {
        let c = cache();
        assert_eq!(c.set_count(), 4);
        assert_eq!(c.ways(), 2);
        assert_eq!(c.capacity(), 512);
    }

    #[test]
    fn miss_then_hit() {
        let mut c = cache();
        assert!(c.access(0).is_none());
        assert!(c.insert(0, 42, false).is_none());
        assert_eq!(c.access(0), Some(&mut 42));
        assert_eq!(c.stats.hits, 1);
        assert_eq!(c.stats.misses, 1);
    }

    #[test]
    fn same_set_conflict_evicts_lru() {
        let mut c = cache();
        // Lines 0, 4*64, 8*64 map to set 0 (4 sets).
        let (a, b, d) = (0u64, 4 * 64, 8 * 64);
        c.insert(a, 1, false);
        c.insert(b, 2, false);
        // Touch `a` so `b` becomes LRU.
        assert!(c.access(a).is_some());
        let ev = c.insert(d, 3, false).expect("set is full");
        assert_eq!(ev.line_addr, b);
        assert_eq!(ev.value, 2);
        assert!(!ev.dirty);
        assert!(c.peek(a).is_some());
        assert!(c.peek(b).is_none());
        assert!(c.peek(d).is_some());
    }

    #[test]
    fn dirty_eviction_counts_writeback() {
        let mut c = cache();
        c.insert(0, 1, true);
        c.insert(4 * 64, 2, false);
        c.insert(8 * 64, 3, false); // evicts line 0 (LRU, dirty)
        let ev_dirty = c.stats.writebacks;
        assert_eq!(ev_dirty, 1);
        assert_eq!(c.stats.evictions, 1);
    }

    #[test]
    fn reinsert_merges_dirtiness() {
        let mut c = cache();
        c.insert(0, 1, true);
        assert!(c.insert(0, 5, false).is_none(), "replacement, not eviction");
        c.insert(4 * 64, 2, false);
        let ev = c.insert(8 * 64, 3, false).unwrap();
        assert!(ev.dirty, "dirtiness sticks across replacement");
        assert_eq!(ev.value, 5);
    }

    #[test]
    fn mark_dirty_and_invalidate() {
        let mut c = cache();
        c.insert(64, 9, false);
        c.mark_dirty(64);
        assert_eq!(c.invalidate(64), Some((9, true)));
        assert_eq!(c.invalidate(64), None);
    }

    #[test]
    fn drain_returns_all_lines_with_addresses() {
        let mut c = cache();
        c.insert(0, 1, false);
        c.insert(64, 2, true);
        c.insert(8 * 64, 3, false);
        let mut drained = c.drain();
        drained.sort_by_key(|(a, _, _)| *a);
        assert_eq!(
            drained,
            vec![(0, 1, false), (64, 2, true), (8 * 64, 3, false)]
        );
        assert_eq!(c.resident_lines(), 0);
    }

    #[test]
    fn peek_does_not_touch_lru() {
        let mut c = cache();
        c.insert(0, 1, false);
        c.insert(4 * 64, 2, false);
        // peek at line 0 (LRU untouched: 0 is still LRU after peeking? No —
        // 4*64 was inserted last, so 0 is LRU. Peek must not promote it.)
        assert!(c.peek(0).is_some());
        let ev = c.insert(8 * 64, 3, false).unwrap();
        assert_eq!(ev.line_addr, 0, "peek did not promote the line");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_panics() {
        SetAssocCache::<u8>::new(3 * 64 * 2, 2, 1);
    }
}
