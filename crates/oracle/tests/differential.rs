//! Integration tests of the differential oracle: a miniature fuzzing
//! campaign (the CI `fuzz --smoke` run is the full-size version), the
//! determinism guarantee, and the seeded-fault acceptance check — a
//! deliberately injected off-by-one in a scratch copy of the L1
//! security-byte mask must be caught by the fuzzer and shrunk to a tiny
//! counterexample.

use califorms_oracle::corpus::{pack_file_name, read_pack, replay_pack_file, write_pack};
use califorms_oracle::diff::{diff_pack, DiffConfig, FaultInjection};
use califorms_oracle::fuzz::{case_seed, generate_case};
use califorms_oracle::shrink::{shrink_ops, DEFAULT_CHECK_BUDGET};
use califorms_sim::TracePack;

const CAMPAIGN_SEED: u64 = 0xC411_F02A;

#[test]
fn fuzz_campaign_single_core_agrees() {
    for i in 0..60u64 {
        let case = generate_case(case_seed(CAMPAIGN_SEED, i), 200, 1);
        let d = diff_pack(&case.pack, &case.events, &DiffConfig::single());
        assert_eq!(
            d, None,
            "case {i} ({}, seed {:#x}) diverged",
            case.label, case.seed
        );
    }
}

#[test]
fn fuzz_campaign_multicore_agrees_at_both_weave_batches() {
    for i in 0..16u64 {
        let case = generate_case(case_seed(CAMPAIGN_SEED ^ 0x4444, i), 240, 4);
        for batch in [1u32, 64] {
            let d = diff_pack(&case.pack, &[], &DiffConfig::multicore(4, batch));
            assert_eq!(
                d, None,
                "case {i} (seed {:#x}, batch {batch}) diverged",
                case.seed
            );
        }
    }
}

#[test]
fn multicore_cases_also_agree_replayed_sequentially() {
    // A lane-structured pack replayed through the single-core Engine in
    // program (interleaved) order must agree with the single-lane
    // oracle too — the oracle is config-agnostic.
    for i in 0..6u64 {
        let case = generate_case(case_seed(CAMPAIGN_SEED ^ 0x8888, i), 160, 2);
        assert_eq!(diff_pack(&case.pack, &[], &DiffConfig::single()), None);
    }
}

#[test]
fn case_stream_is_bit_identical_across_runs() {
    for i in 0..24u64 {
        let s = case_seed(CAMPAIGN_SEED, i);
        for cores in [1usize, 4] {
            let a = generate_case(s, 200, cores);
            let b = generate_case(s, 200, cores);
            assert_eq!(a.pack.bytes(), b.pack.bytes());
            assert_eq!(a.events, b.events);
            assert_eq!(a.label, b.label);
        }
    }
}

/// The seeded-fault acceptance check: an off-by-one injected into a
/// scratch copy of the L1 security-byte mask is (a) caught by the
/// fuzzer within a handful of cases and (b) shrunk to a ≤32-op
/// counterexample pack that still reproduces, including after a trip
/// through the corpus file format.
#[test]
fn injected_l1_mask_off_by_one_is_caught_and_shrunk() {
    let faulty = DiffConfig {
        fault: Some(FaultInjection::L1MaskOffByOne),
        ..DiffConfig::single()
    };
    let mut caught = None;
    for i in 0..50u64 {
        let case = generate_case(case_seed(CAMPAIGN_SEED ^ 0xFA17, i), 200, 1);
        // The injected fault perturbs only the final-state scratch copy,
        // so drop the mid-run events before checking.
        if diff_pack(&case.pack, &[], &faulty).is_some() {
            caught = Some(case);
            break;
        }
    }
    let case = caught.expect("the fuzzer must catch the injected mask fault");

    // A candidate reduction can unbalance mask windows, which both
    // sides fault on: a panicking candidate is not a reduction.
    let shrunk = shrink_ops(
        &case.pack.to_vec(),
        1,
        |ops| {
            let pack = TracePack::from_ops(ops.iter().copied());
            std::panic::catch_unwind(|| diff_pack(&pack, &[], &faulty).is_some()).unwrap_or(false)
        },
        DEFAULT_CHECK_BUDGET,
    );
    assert!(
        shrunk.len() <= 32,
        "counterexample must shrink to ≤32 ops, got {}",
        shrunk.len()
    );
    let counterexample = TracePack::from_ops(shrunk.iter().copied());
    assert!(
        diff_pack(&counterexample, &[], &faulty).is_some(),
        "shrunk pack still reproduces the divergence"
    );
    // Without the injected fault the same pack is clean: the divergence
    // was the fault, not a latent engine/oracle disagreement.
    assert_eq!(diff_pack(&counterexample, &[], &DiffConfig::single()), None);

    // Round-trip through the corpus format.
    let dir = std::env::temp_dir().join("califorms-oracle-shrink-test");
    let path = dir.join(pack_file_name("mask-fault", 1));
    write_pack(&path, &counterexample).unwrap();
    let reread = read_pack(&path).unwrap();
    assert!(diff_pack(&reread, &[], &faulty).is_some());
    for (cfg, d) in replay_pack_file(&path).unwrap() {
        assert_eq!(d, None, "un-faulted corpus replay ({cfg}) is clean");
    }
    std::fs::remove_dir_all(&dir).ok();
}
