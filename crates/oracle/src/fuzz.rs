//! The seeded deterministic trace fuzzer: a scenario grammar that
//! synthesises valid packs no hand-written workload covers.
//!
//! Every case is a pure function of its seed (the rand shim's
//! `SmallRng` is deterministic), so a divergence reproduces from
//! `(seed, ops, cores)` alone and the same seed produces a bit-identical
//! case stream across runs and machines.
//!
//! Single-core scenarios:
//!
//! * **heap-lifecycle** — alloc/free cycles over
//!   [`CaliformsHeap`] with random allocator knobs (quarantine size,
//!   span-only vs full-object frees, non-temporal frees) and random
//!   insertion policies, interleaved with in-object accesses,
//!   overflowing accesses and use-after-free probes.
//! * **cform-churn** — promotion/demotion storms over a few lines: a
//!   mix of K-map-legal transitions (tracked against a shadow mask) and
//!   deliberately illegal ones, `CFORM` and `CFORM-NT`, plus
//!   loads/stores over the churning lines.
//! * **probe-sweep** — caliform an object per a random layout policy,
//!   then sweep byte-granular loads/stores across it (the
//!   `security::attacks` probe pattern), some inside whitelist mask
//!   windows.
//! * **random-mix** — uniform ops over a small line pool sized to force
//!   L1 set conflicts (spills/fills of califormed lines), including
//!   line-crossing accesses.
//! * **workload-replay** — a miniature `califorms-workloads` benchmark
//!   profile generated at a random policy.
//!
//! A third of single-core cases interleave mid-run [`SysEvent`]s (DMA
//! reads, page swap cycles).
//!
//! Multi-core cases build one lane per core and interleave them
//! round-robin, so lane `c`'s ops land exactly on engine core `c`. The
//! grammar keeps blacklist-state writes (CFORMs) and trapping accesses
//! lane-exclusive, while **data** races on shared lines are allowed and
//! encouraged (false sharing, read-mostly sharing): the address-derived
//! store payload makes racing writes idempotent, so the case stays
//! interleaving-independent and the flat oracle is exact for it.

use crate::diff::SysEvent;
use califorms_alloc::{AllocatorConfig, CaliformsHeap, FreeMode};
use califorms_layout::{InsertionPolicy, StructDef};
use califorms_sim::{TraceOp, TracePack};
use califorms_workloads::{generate, BenchmarkProfile, WorkloadConfig};
use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// One generated differential-test case.
#[derive(Debug, Clone)]
pub struct FuzzCase {
    /// Scenario name (for reporting).
    pub label: &'static str,
    /// The case's seed (reproduction key).
    pub seed: u64,
    /// The encoded trace.
    pub pack: TracePack,
    /// Mid-run system events (single-core cases only).
    pub events: Vec<SysEvent>,
    /// Core count the case is built for (1 = [`califorms_sim::Engine`];
    /// >1 = lane-structured for [`califorms_sim::MulticoreEngine`]).
    pub cores: usize,
}

/// Derives the per-case seed from a campaign seed and a case index
/// (SplitMix64 finalizer — decorrelates consecutive indices).
pub fn case_seed(campaign_seed: u64, index: u64) -> u64 {
    let mut z = campaign_seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

const LINE: u64 = 64;

/// Policies the scenarios draw layouts from.
fn random_policy(rng: &mut SmallRng) -> InsertionPolicy {
    match rng.gen_range(0u32..5) {
        0 => InsertionPolicy::None,
        1 => InsertionPolicy::Opportunistic,
        2 => InsertionPolicy::full_1_to(3),
        3 => InsertionPolicy::full_1_to(7),
        _ => InsertionPolicy::intelligent_1_to(7),
    }
}

/// A load or store of a random size at `addr`, clipped so the access
/// never wraps (all scenario bases are far below the top anyway).
fn random_access(rng: &mut SmallRng, addr: u64) -> TraceOp {
    let size = rng.gen_range(1u8..=64);
    if rng.gen_range(0u32..2) == 0 {
        TraceOp::Load { addr, size }
    } else {
        TraceOp::Store { addr, size }
    }
}

// --- single-core scenarios --------------------------------------------

/// Heap alloc/free lifecycles with probes. Returns (ops, region base).
fn heap_lifecycle(rng: &mut SmallRng, budget: usize) -> (Vec<TraceOp>, u64) {
    let base = 0x10_0000u64;
    let cfg = AllocatorConfig {
        quarantine_bytes: rng.gen_range(0usize..2048),
        free_mode: if rng.gen_range(0u32..2) == 0 {
            FreeMode::FullObject
        } else {
            FreeMode::SpanOnly
        },
        nt_cform_on_free: rng.gen_range(0u32..2) == 0,
        ..AllocatorConfig::default()
    };
    let mut heap = CaliformsHeap::new(base, cfg);
    let mut ops = Vec::new();
    let mut live: Vec<(u64, usize)> = Vec::new();
    let mut freed: Vec<(u64, usize)> = Vec::new();
    let def = StructDef::paper_example();
    while ops.len() < budget {
        match rng.gen_range(0u32..10) {
            0..=2 => {
                let layout = random_policy(rng).apply(&def, rng);
                let size = layout.size;
                let p = heap.malloc(&layout, &mut ops);
                live.push((p, size));
            }
            3 if !live.is_empty() => {
                let victim = live.remove(rng.gen_range(0usize..live.len()));
                heap.free(victim.0, &mut ops);
                freed.push(victim);
            }
            4..=6 if !live.is_empty() => {
                // In-object access; may overflow into spans/neighbours.
                let (p, size) = live[rng.gen_range(0usize..live.len())];
                let off = rng.gen_range(0u64..size as u64 + 8);
                ops.push(random_access(rng, p + off));
            }
            7 if !freed.is_empty() => {
                // Use-after-free probe.
                let (p, size) = freed[rng.gen_range(0usize..freed.len())];
                let off = rng.gen_range(0u64..size.max(1) as u64);
                ops.push(random_access(rng, p + off));
            }
            _ => ops.push(TraceOp::Exec(rng.gen_range(1u32..200))),
        }
    }
    (ops, base)
}

/// Random CFORM attrs/mask pairs: half the time a K-map-legal
/// transition derived from the shadow mask, half the time fully random
/// (exercising the fault-and-commit-nothing path).
fn churn_cform(rng: &mut SmallRng, shadow: &mut u64, line_addr: u64) -> TraceOp {
    let r: u64 = (u64::from(rng.next_u32()) << 32) | u64::from(rng.next_u32());
    let (attrs, mask) = if rng.gen_range(0u32..2) == 0 {
        // Legal: set a subset of clear bits and unset a subset of set
        // bits in one instruction.
        let set = r & !*shadow;
        let unset = (r >> 13) & *shadow;
        *shadow = (*shadow | set) & !unset;
        (set, set | unset)
    } else {
        let attrs = r;
        let mask = r.rotate_right(23) | 1;
        // Only update the shadow if the op will actually be legal.
        let illegal = (mask & attrs & *shadow) != 0 || (mask & !attrs & !*shadow) != 0;
        if !illegal {
            *shadow = (*shadow | (mask & attrs)) & !(mask & !attrs);
        }
        (attrs, mask)
    };
    if rng.gen_range(0u32..4) == 0 {
        TraceOp::CformNt {
            line_addr,
            attrs,
            mask,
        }
    } else {
        TraceOp::Cform {
            line_addr,
            attrs,
            mask,
        }
    }
}

/// Promotion/demotion storms over a few lines.
fn cform_churn(rng: &mut SmallRng, budget: usize) -> (Vec<TraceOp>, u64) {
    let base = 0x20_0000u64;
    let nlines = rng.gen_range(2usize..6);
    let mut shadows = vec![0u64; nlines];
    let mut ops = Vec::new();
    while ops.len() < budget {
        let l = rng.gen_range(0usize..nlines);
        let line_addr = base + l as u64 * LINE;
        match rng.gen_range(0u32..4) {
            0 | 1 => ops.push(churn_cform(rng, &mut shadows[l], line_addr)),
            2 => {
                let off = rng.gen_range(0u64..LINE);
                ops.push(random_access(rng, line_addr + off));
            }
            _ => ops.push(TraceOp::Exec(rng.gen_range(1u32..50))),
        }
    }
    (ops, base)
}

/// Caliform an object, then sweep probes across it, some whitelisted.
fn probe_sweep(rng: &mut SmallRng, budget: usize) -> (Vec<TraceOp>, u64) {
    let base = 0x30_0000u64;
    let layout = random_policy(rng).apply(&StructDef::paper_example(), rng);
    let mut ops = Vec::new();
    for op in layout.cform_ops(base) {
        ops.push(TraceOp::Cform {
            line_addr: op.line_addr,
            attrs: op.mask,
            mask: op.mask,
        });
    }
    let span = layout.size.max(1) as u64 + 16;
    let mut depth = 0u32;
    while ops.len() < budget {
        match rng.gen_range(0u32..12) {
            0 if depth < 4 => {
                ops.push(TraceOp::MaskPush);
                depth += 1;
            }
            1 if depth > 0 => {
                ops.push(TraceOp::MaskPop);
                depth -= 1;
            }
            _ => {
                // Byte-granular sweep probe, the attack pattern.
                let off = rng.gen_range(0u64..span);
                let size = *[1u8, 1, 1, 2, 4, 8].get(rng.gen_range(0usize..6)).unwrap();
                ops.push(if rng.gen_range(0u32..3) == 0 {
                    TraceOp::Store {
                        addr: base + off,
                        size,
                    }
                } else {
                    TraceOp::Load {
                        addr: base + off,
                        size,
                    }
                });
            }
        }
    }
    (ops, base)
}

/// Uniform random ops over a pool of lines chosen to collide in L1 sets.
fn random_mix(rng: &mut SmallRng, budget: usize) -> (Vec<TraceOp>, u64) {
    let base = 0x40_0000u64;
    // Half the pool strides by 4 KB (same L1 set → evictions), half is
    // local (adjacent lines → line-crossing accesses). The local chain
    // starts at 1: `base` itself is already slot 0 of the stride chain,
    // and a duplicated line would split its shadow mask across two
    // slots, desyncing the legal-transition generator.
    let pool: Vec<u64> = (0..8u64)
        .map(|i| base + i * 4096)
        .chain((1..8u64).map(|i| base + i * LINE))
        .collect();
    let mut depth = 0u32;
    let mut shadow = vec![0u64; pool.len()];
    let mut ops = Vec::new();
    while ops.len() < budget {
        let l = rng.gen_range(0usize..pool.len());
        let line_addr = pool[l];
        match rng.gen_range(0u32..10) {
            0 | 1 => ops.push(churn_cform(rng, &mut shadow[l], line_addr)),
            2 if depth < 4 => {
                ops.push(TraceOp::MaskPush);
                depth += 1;
            }
            3 if depth > 0 => {
                ops.push(TraceOp::MaskPop);
                depth -= 1;
            }
            4 => ops.push(TraceOp::Exec(rng.gen_range(1u32..400))),
            _ => {
                let off = rng.gen_range(0u64..LINE);
                ops.push(random_access(rng, line_addr + off));
            }
        }
    }
    (ops, base)
}

/// A miniature workload-generator benchmark.
fn workload_replay(rng: &mut SmallRng, budget: usize, seed: u64) -> (Vec<TraceOp>, u64) {
    let profile = BenchmarkProfile {
        name: "fuzz-mini",
        live_objects: rng.gen_range(4usize..24),
        fields: rng.gen_range(2usize..8),
        array_len: *[0usize, 16, 64].get(rng.gen_range(0usize..3)).unwrap(),
        churn_per_kop: rng.gen_range(0u32..80),
        chase_pct: rng.gen_range(0u32..50),
        stream_pct: rng.gen_range(0u32..50),
        exec_per_mem: rng.gen_range(1u32..6),
        overlap: 0.5,
        global_pct: rng.gen_range(0u32..40),
        calls_per_kop: rng.gen_range(0u32..20),
        stack_arrays: rng.gen_range(0u32..2) == 0,
        in_fig10: false,
        in_software_eval: false,
    };
    let cfg = WorkloadConfig::with_policy(random_policy(rng), budget.min(400), seed);
    let workload = generate(&profile, &cfg);
    (workload.ops.clone(), 0x1000_0000)
}

// --- multi-core lanes --------------------------------------------------

/// Builds `cores` lanes and interleaves them round-robin so lane `c`'s
/// ops land on engine core `c` (op index ≡ c mod cores).
fn multilane(rng: &mut SmallRng, budget: usize, cores: usize) -> Vec<TraceOp> {
    let shared_base = 0x100_0000u64; // 8 plain lines, shared by all lanes
    let shared_lines = 8u64;
    let per_lane = budget.div_ceil(cores).max(8);
    let mut lanes: Vec<Vec<TraceOp>> = Vec::with_capacity(cores);
    for c in 0..cores {
        // Lane-exclusive region: CFORMs and trapping probes stay here.
        let excl = 0x200_0000u64 + c as u64 * 0x10_0000;
        // Local chain starts at 1 — `excl` is already slot 0 of the
        // stride chain (see `random_mix`).
        let pool: Vec<u64> = (0..4u64)
            .map(|i| excl + i * 4096)
            .chain((1..4u64).map(|i| excl + i * LINE))
            .collect();
        let mut shadow = vec![0u64; pool.len()];
        let mut depth = 0u32;
        let mut ops = Vec::with_capacity(per_lane);
        while ops.len() < per_lane {
            match rng.gen_range(0u32..12) {
                0 | 1 => {
                    let l = rng.gen_range(0usize..pool.len());
                    ops.push(churn_cform(rng, &mut shadow[l], pool[l]));
                }
                2..=4 => {
                    // Exclusive-region access (may trap on own CFORMs).
                    let l = rng.gen_range(0usize..pool.len());
                    let off = rng.gen_range(0u64..LINE);
                    ops.push(random_access(rng, pool[l] + off));
                }
                5..=7 => {
                    // Shared-region access: every lane hits the same few
                    // lines (false sharing / read-mostly sharing). No
                    // CFORMs ever land here, and racing stores are
                    // idempotent (payload is a function of the address),
                    // so the case stays interleaving-independent.
                    let off = rng.gen_range(0u64..shared_lines * LINE - 8);
                    ops.push(random_access(rng, shared_base + off));
                }
                8 if depth < 3 => {
                    ops.push(TraceOp::MaskPush);
                    depth += 1;
                }
                9 if depth > 0 => {
                    ops.push(TraceOp::MaskPop);
                    depth -= 1;
                }
                _ => ops.push(TraceOp::Exec(rng.gen_range(1u32..100))),
            }
        }
        ops.truncate(per_lane);
        lanes.push(ops);
    }
    let mut interleaved = Vec::with_capacity(per_lane * cores);
    for j in 0..per_lane {
        for lane in &lanes {
            interleaved.push(lane[j]);
        }
    }
    interleaved
}

/// Generates one deterministic case from its seed.
///
/// `cores == 1` draws one of the single-core scenarios (a third of them
/// with mid-run DMA/swap events); `cores > 1` builds the lane-structured
/// multi-core grammar.
pub fn generate_case(seed: u64, ops_budget: usize, cores: usize) -> FuzzCase {
    assert!(cores >= 1, "need at least one core");
    let mut rng = SmallRng::seed_from_u64(seed);
    let budget = ops_budget.max(16);
    if cores > 1 {
        let ops = multilane(&mut rng, budget, cores);
        return FuzzCase {
            label: "multilane",
            seed,
            pack: TracePack::from_ops(ops),
            events: Vec::new(),
            cores,
        };
    }
    let (label, (ops, region)) = match rng.gen_range(0u32..5) {
        0 => ("heap-lifecycle", heap_lifecycle(&mut rng, budget)),
        1 => ("cform-churn", cform_churn(&mut rng, budget)),
        2 => ("probe-sweep", probe_sweep(&mut rng, budget)),
        3 => ("random-mix", random_mix(&mut rng, budget)),
        _ => ("workload-replay", workload_replay(&mut rng, budget, seed)),
    };
    let mut events = Vec::new();
    if rng.gen_range(0u32..3) == 0 && !ops.is_empty() {
        for _ in 0..rng.gen_range(1u32..=2) {
            let at_op = rng.gen_range(0usize..=ops.len());
            if rng.gen_range(0u32..2) == 0 {
                events.push(SysEvent::Dma {
                    at_op,
                    addr: region + rng.gen_range(0u64..2048),
                    len: rng.gen_range(1usize..=256),
                });
            } else {
                // Region bases are page-aligned; pick one of the first
                // few pages of the region (untouched pages swap as
                // all-zero lines, which is itself worth exercising).
                events.push(SysEvent::SwapCycle {
                    at_op,
                    page_addr: (region & !4095) + rng.gen_range(0u64..4) * 4096,
                });
            }
        }
    }
    FuzzCase {
        label,
        seed,
        pack: TracePack::from_ops(ops),
        events,
        cores: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_is_bit_identical() {
        for i in 0..20u64 {
            let s = case_seed(42, i);
            let a = generate_case(s, 200, 1);
            let b = generate_case(s, 200, 1);
            assert_eq!(a.pack.bytes(), b.pack.bytes());
            assert_eq!(a.events, b.events);
            let a = generate_case(s, 200, 4);
            let b = generate_case(s, 200, 4);
            assert_eq!(a.pack.bytes(), b.pack.bytes());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_case(case_seed(1, 0), 200, 1);
        let b = generate_case(case_seed(2, 0), 200, 1);
        assert_ne!(a.pack.bytes(), b.pack.bytes());
    }

    #[test]
    fn multilane_ops_are_full_rounds() {
        let case = generate_case(7, 300, 4);
        assert_eq!(case.pack.len_ops() % 4, 0);
        assert!(case.events.is_empty());
    }

    #[test]
    fn scenarios_produce_every_label() {
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..64u64 {
            seen.insert(generate_case(case_seed(9, i), 64, 1).label);
        }
        assert!(seen.len() >= 5, "all scenarios drawn: {seen:?}");
    }
}
