//! Counterexample shrinking: reduce a diverging op stream to a minimal
//! one that still diverges.
//!
//! The shrinker is engine-agnostic — it only needs a `check` predicate
//! ("does this op stream still diverge?") and preserves whatever the
//! predicate observes. Reduction runs in two phases:
//!
//! 1. **ddmin-style chunk removal** at *round* granularity: for
//!    multi-core packs a round is one op per core, so removing whole
//!    rounds keeps every surviving op on its original lane (removing
//!    single ops would shift the round-robin assignment of everything
//!    after them and could turn a lane-safe pack into a racy one,
//!    manufacturing spurious divergences).
//! 2. For multi-core packs, a final **neutralisation pass** that
//!    replaces individual surviving ops with `Exec(0)` where the
//!    divergence persists — single ops can't be removed, but they can
//!    be blanked.
//!
//! The total number of `check` invocations is budgeted; shrinking is a
//! convenience, not a proof search.

use califorms_sim::TraceOp;

/// Default budget of `check` invocations.
pub const DEFAULT_CHECK_BUDGET: usize = 2000;

/// Shrinks `ops` (grouped in rounds of `stride` ops — pass `1` for
/// single-core streams) to a smaller stream for which `check` still
/// returns `true`.
///
/// Returns the reduced stream; if `check` fails on the input itself the
/// input is returned unchanged.
pub fn shrink_ops(
    ops: &[TraceOp],
    stride: usize,
    mut check: impl FnMut(&[TraceOp]) -> bool,
    check_budget: usize,
) -> Vec<TraceOp> {
    assert!(stride >= 1, "stride must be at least 1");
    let mut current: Vec<TraceOp> = ops.to_vec();
    if stride > 1 && !current.len().is_multiple_of(stride) {
        // Not in full rounds: refuse to reshuffle lanes, shrink nothing.
        return current;
    }
    let mut checks = 0usize;
    let spent = |checks: &mut usize| {
        *checks += 1;
        *checks > check_budget
    };
    if !check(&current) || spent(&mut checks) {
        return current;
    }

    // Phase 1: remove round-aligned chunks, halving the chunk size.
    let mut chunk_rounds = (current.len() / stride).div_ceil(2).max(1);
    loop {
        let mut removed_any = false;
        let mut start_round = 0usize;
        while start_round * stride < current.len() {
            let lo = start_round * stride;
            let hi = ((start_round + chunk_rounds) * stride).min(current.len());
            let mut candidate = Vec::with_capacity(current.len() - (hi - lo));
            candidate.extend_from_slice(&current[..lo]);
            candidate.extend_from_slice(&current[hi..]);
            if !candidate.is_empty() && check(&candidate) {
                current = candidate;
                removed_any = true;
                // Re-test the same position: the next chunk slid into it.
            } else {
                start_round += chunk_rounds;
            }
            if spent(&mut checks) {
                return current;
            }
        }
        if chunk_rounds == 1 && !removed_any {
            break;
        }
        if !removed_any {
            chunk_rounds = (chunk_rounds / 2).max(1);
        }
    }

    // Phase 2 (multi-core): blank individual ops in place.
    if stride > 1 {
        for i in 0..current.len() {
            if matches!(current[i], TraceOp::Exec(0)) {
                continue;
            }
            let saved = current[i];
            current[i] = TraceOp::Exec(0);
            if !check(&current) {
                current[i] = saved;
            }
            if spent(&mut checks) {
                return current;
            }
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(addr: u64) -> TraceOp {
        TraceOp::Load { addr, size: 1 }
    }

    #[test]
    fn shrinks_to_the_single_culprit() {
        // Divergence = "stream contains a load of 0xBAD".
        let mut ops: Vec<TraceOp> = (0..200u64).map(load).collect();
        ops.insert(137, load(0xBAD));
        let shrunk = shrink_ops(
            &ops,
            1,
            |s| {
                s.iter()
                    .any(|op| matches!(op, TraceOp::Load { addr: 0xBAD, .. }))
            },
            DEFAULT_CHECK_BUDGET,
        );
        assert_eq!(shrunk, vec![load(0xBAD)]);
    }

    #[test]
    fn multicore_shrink_preserves_round_alignment() {
        let stride = 4usize;
        let mut ops: Vec<TraceOp> = (0..160u64).map(load).collect();
        // Culprit on lane 2 of round 17.
        ops[17 * stride + 2] = load(0xBAD);
        let shrunk = shrink_ops(
            &ops,
            stride,
            |s| {
                s.len().is_multiple_of(stride)
                    && s.iter().enumerate().any(|(i, op)| {
                        i % stride == 2 && matches!(op, TraceOp::Load { addr: 0xBAD, .. })
                    })
            },
            DEFAULT_CHECK_BUDGET,
        );
        assert!(shrunk.len() <= stride, "one round survives: {shrunk:?}");
        assert!(shrunk.len().is_multiple_of(stride));
    }

    #[test]
    fn non_diverging_input_is_returned_unchanged() {
        let ops: Vec<TraceOp> = (0..10u64).map(load).collect();
        let shrunk = shrink_ops(&ops, 1, |_| false, DEFAULT_CHECK_BUDGET);
        assert_eq!(shrunk, ops);
    }
}
