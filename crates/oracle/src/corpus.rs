//! Reading, writing and replaying the `corpus/` of regression packs.
//!
//! A corpus entry is a raw [`TracePack`] byte stream (`.cftp`) whose
//! file name encodes the core count it was built for:
//! `<stem>-c<cores>.cftp`. Entries are replayed by
//! [`replay_pack_file`] — single-core packs through
//! [`califorms_sim::Engine`], multi-core packs through
//! [`califorms_sim::MulticoreEngine`] at weave batches 1 **and** 64,
//! each under both the serial and the speculative weave — and every
//! replay must agree with the oracle byte-for-byte. Shrunk
//! counterexamples from past fuzzing campaigns land here so the bug
//! they caught can never silently return.

use crate::diff::{diff_pack, DiffConfig, Divergence};
use califorms_sim::TracePack;
use std::io;
use std::path::Path;

/// Builds the canonical corpus file name for a pack.
pub fn pack_file_name(stem: &str, cores: usize) -> String {
    format!("{stem}-c{cores}.cftp")
}

/// Parses the core count out of a corpus file name (`None` if the name
/// does not follow the `…-c<cores>.cftp` convention).
pub fn cores_from_file_name(name: &str) -> Option<usize> {
    let stem = name.strip_suffix(".cftp")?;
    let idx = stem.rfind("-c")?;
    stem[idx + 2..].parse().ok()
}

/// Writes a pack's serialised bytes to `path`.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_pack(path: &Path, pack: &TracePack) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, pack.bytes())
}

/// Reads and validates a pack from `path`.
///
/// # Errors
///
/// Filesystem errors, or `InvalidData` for a corrupt pack.
pub fn read_pack(path: &Path) -> io::Result<TracePack> {
    let bytes = std::fs::read(path)?;
    TracePack::from_bytes(bytes)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

/// Replays one corpus file through every configuration it is meant for
/// and returns `(config description, divergence)` per replay.
///
/// # Errors
///
/// Filesystem errors, `InvalidData` for a corrupt pack, or
/// `InvalidInput` when the file name does not carry the `-c<cores>`
/// suffix — silently defaulting a renamed multi-core regression pack
/// to a single-core replay would quietly drop the coverage it was
/// committed for.
pub fn replay_pack_file(path: &Path) -> io::Result<Vec<(String, Option<Divergence>)>> {
    let pack = read_pack(path)?;
    let cores = path
        .file_name()
        .and_then(|n| n.to_str())
        .and_then(cores_from_file_name)
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "{}: corpus packs must be named <stem>-c<cores>.cftp",
                    path.display()
                ),
            )
        })?;
    let mut results = Vec::new();
    if cores == 1 {
        results.push((
            "1-core".to_string(),
            diff_pack(&pack, &[], &DiffConfig::single()),
        ));
    } else {
        for batch in [1u32, 64] {
            results.push((
                format!("{cores}-core, weave batch {batch}"),
                diff_pack(&pack, &[], &DiffConfig::multicore(cores, batch)),
            ));
            // The speculative-weave arm: same pack, optimistic parallel
            // weave, required bit-identical to the serial run above
            // (DESIGN.md §15).
            results.push((
                format!("{cores}-core, weave batch {batch}, speculative"),
                diff_pack(
                    &pack,
                    &[],
                    &DiffConfig {
                        speculative: true,
                        ..DiffConfig::multicore(cores, batch)
                    },
                ),
            ));
        }
    }
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use califorms_sim::TraceOp;

    #[test]
    fn file_name_round_trips_cores() {
        assert_eq!(cores_from_file_name(&pack_file_name("probe", 4)), Some(4));
        assert_eq!(cores_from_file_name("probe-c1.cftp"), Some(1));
        assert_eq!(cores_from_file_name("plain.bin"), None);
        assert_eq!(cores_from_file_name("no-cores.cftp"), None);
    }

    #[test]
    fn write_read_replay_round_trip() {
        let dir = std::env::temp_dir().join("califorms-oracle-corpus-test");
        let path = dir.join(pack_file_name("roundtrip", 1));
        let pack = TracePack::from_ops([
            TraceOp::Cform {
                line_addr: 0x500,
                attrs: 1 << 3,
                mask: 1 << 3,
            },
            TraceOp::Load {
                addr: 0x503,
                size: 1,
            },
        ]);
        write_pack(&path, &pack).unwrap();
        let reread = read_pack(&path).unwrap();
        assert_eq!(reread, pack);
        for (cfg, d) in replay_pack_file(&path).unwrap() {
            assert_eq!(d, None, "{cfg} diverged");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
