//! # califorms-oracle
//!
//! A trusted, cache-free reference model of the Califorms architecture,
//! a differential harness that replays any
//! [`TracePack`](califorms_sim::TracePack) through both the reference
//! model and the optimized simulator stacks, and a seeded deterministic
//! trace fuzzer with a divergence shrinker.
//!
//! The whole security argument of Califorms is a byte-exact invariant:
//! every blacklisted byte traps, every benign byte doesn't, and data
//! survives every format conversion. After the banked MESI directory,
//! the L1 probe fast paths, the batched weave and the parallel pack
//! decode, that invariant is enforced by a heavily optimized stack that
//! — before this crate — was only checked against itself. The oracle
//! re-derives the architectural outcome from the paper's semantics
//! directly, with **no caches, no LSQ, no coherence**: a flat
//! address→line map plus a blacklist bitset per line. Spills and fills
//! are no-ops by construction, so any divergence pins a bug in the
//! optimized machinery (or, symmetrically, in the model).
//!
//! * [`model`] — [`FlatMemory`] + [`OracleCore`]: the reference
//!   semantics (store/load/CFORM, zeroing invariant, exception at the
//!   exact faulting byte, whitelist masks).
//! * [`diff`] — [`diff_pack`](diff::diff_pack): replay a pack through
//!   [`Engine`](califorms_sim::Engine) or
//!   [`MulticoreEngine`](califorms_sim::MulticoreEngine) (any
//!   quantum/weave-batch config) and the oracle, and report the first
//!   [`Divergence`](diff::Divergence) in exceptions, final memory,
//!   blacklist state or counters. Supports mid-run DMA reads and page
//!   swap cycles, and deliberate fault injection for testing the
//!   harness itself.
//! * [`fuzz`] — the seeded scenario grammar: heap alloc/free lifecycles
//!   over `califorms-alloc`, CFORM promotion/demotion churn, security
//!   probe sweeps, random op mixes, workload replays, and
//!   interleaving-independent multi-core lane cases (cross-core
//!   sharing and false sharing included). Same seed ⇒ bit-identical
//!   case stream.
//! * [`shrink`] — reduces any diverging op stream to a minimal
//!   counterexample while preserving the divergence.
//! * [`corpus`] — reading/writing regression packs under `corpus/`.
//!
//! See DESIGN.md §11 for what the oracle trusts, what it checks, and
//! how to reproduce a fuzzer seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod diff;
pub mod fuzz;
pub mod model;
pub mod shrink;

pub use diff::{
    diff_pack, run_fault_campaign, DiffConfig, Divergence, FaultCampaign, FaultInjection, SysEvent,
};
pub use fuzz::{generate_case, FuzzCase};
pub use model::{FlatMemory, OracleCore};
pub use shrink::shrink_ops;
