//! The differential harness: replay one pack through the optimized
//! simulator and the flat reference model, and report the first
//! divergence.
//!
//! What is compared, per run:
//!
//! 1. **Delivered exceptions**, per core, in program order — full
//!    equality of fault address, access kind, exception kind and pc.
//! 2. **Final memory and blacklist state** over every line the oracle
//!    touched, byte for byte, through the simulator's functional
//!    snapshot hooks ([`Hierarchy::snapshot_line`],
//!    [`CoherentHierarchy::snapshot_line`]).
//! 3. **Architectural counters** (loads, stores, cforms, instructions,
//!    suppressed stores, delivered/suppressed exceptions) per core.
//! 4. Optional **mid-run system events**: a califorms-respecting DMA
//!    read must return exactly the oracle's view of memory at that
//!    point, and a page swap-out/swap-in cycle must be architecturally
//!    invisible (caught by the final state diff).
//!
//! Timing (cycles, latencies, cache hit rates) is deliberately *not*
//! compared — the oracle has no caches, which is the point.
//!
//! For multi-core runs the pack is dealt to per-core lanes with the
//! same deterministic round-robin the engine uses (op `i` → core
//! `i % cores`), and the oracle replays the ops in global index order
//! with per-lane masks/pcs against one shared flat memory. That is a
//! faithful oracle for **interleaving-independent** packs — the only
//! kind the fuzzer generates for multi-core (writes of a line's
//! blacklist state are lane-exclusive; shared lines carry data races
//! only, which the address-derived store payload makes benign). See
//! DESIGN.md §11.

use crate::model::{FlatMemory, OracleCore, OracleCounters};
use califorms_core::CaliformsException;
use califorms_sim::dma::DmaEngine;
use califorms_sim::hierarchy::Hierarchy;
use califorms_sim::os::SwapManager;
use califorms_sim::{
    CoherentHierarchy, Engine, FaultPlan, MulticoreConfig, MulticoreEngine, RunError, SimStats,
    TraceOp, TracePack,
};

/// A deliberate, harness-side fault injected into the engine-observed
/// state, used to prove the fuzzer catches real bugs (the seeded-fault
/// acceptance check) without corrupting the engine itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultInjection {
    /// An off-by-one (left shift) applied to a **scratch copy** of the
    /// L1 security-byte mask of every L1-resident line when the final
    /// state is snapshotted. Any case that ends with a califormed line
    /// in the L1 diverges.
    L1MaskOffByOne,
}

/// A system event interleaved into a (single-core) replay at a given op
/// index. Both events preserve architectural memory state, so the
/// oracle needs no special handling beyond knowing *when* to compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SysEvent {
    /// A califorms-respecting DMA read of `[addr, addr + len)` issued
    /// before op `at_op`; its data and security-byte count must match
    /// the oracle's view of memory at that point.
    Dma {
        /// Op index the event fires before (may equal the op count to
        /// fire after the last op).
        at_op: usize,
        /// Transfer start address.
        addr: u64,
        /// Transfer length in bytes.
        len: usize,
    },
    /// A page swap-out immediately followed by swap-in before op
    /// `at_op` — must be architecturally invisible (metadata parked in
    /// the reserved kernel region and restored).
    SwapCycle {
        /// Op index the event fires before.
        at_op: usize,
        /// Page-aligned address of the 4 KB page to cycle.
        page_addr: u64,
    },
}

impl SysEvent {
    fn at_op(&self) -> usize {
        match self {
            SysEvent::Dma { at_op, .. } | SysEvent::SwapCycle { at_op, .. } => *at_op,
        }
    }
}

/// Configuration of one differential run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiffConfig {
    /// `1` replays through [`Engine`], `>1` through [`MulticoreEngine`]
    /// with the deterministic round-robin pack sharding.
    pub cores: usize,
    /// Weave-turn batching depth (multi-core only; `1` = strict
    /// one-transaction-per-turn weave).
    pub weave_batch: u32,
    /// Cycle-quantum length (multi-core only).
    pub quantum: f64,
    /// Harness-side fault injection (single-core only; see
    /// [`FaultInjection`]).
    pub fault: Option<FaultInjection>,
    /// `Some(k)`: checkpoint+resume mode — additionally checkpoint the
    /// engine run every `k` quantum boundaries (single-core: every `k`
    /// decode batches), resume from **every** captured checkpoint, and
    /// require each resumed run to be bit-identical (stats, runtime and
    /// weave counters, exceptions) to the straight-through run.
    pub resume_at: Option<u64>,
    /// Run the multi-core engine with the speculative weave
    /// (`RuntimeConfig::speculative_weave`, DESIGN.md §15) **and**
    /// additionally replay the same pack through the serial weave,
    /// requiring the two outcomes bit-identical (stats, runtime and
    /// weave counters, exceptions) after masking the spec-only
    /// counters ([`califorms_sim::RuntimeStats::without_spec`]).
    /// Multi-core only; ignored for `cores == 1`.
    pub speculative: bool,
    /// Run the multi-core engine under the adaptive quantum controller
    /// (`MulticoreConfig::with_adaptive_quantum`). Multi-core only.
    /// Combined with [`Self::resume_at`] this pins that a checkpoint
    /// restores the controller's *current* quantum, not the configured
    /// one.
    pub adaptive_quantum: bool,
}

impl Default for DiffConfig {
    fn default() -> Self {
        Self {
            cores: 1,
            weave_batch: 64,
            quantum: 10_000.0,
            fault: None,
            resume_at: None,
            speculative: false,
            adaptive_quantum: false,
        }
    }
}

impl DiffConfig {
    /// A single-core diff against [`Engine`].
    pub fn single() -> Self {
        Self::default()
    }

    /// A multi-core diff against [`MulticoreEngine`] with `cores` cores
    /// and the given weave batch.
    pub fn multicore(cores: usize, weave_batch: u32) -> Self {
        Self {
            cores,
            weave_batch,
            ..Self::default()
        }
    }
}

/// The one place a [`DiffConfig`] becomes a [`MulticoreConfig`] — every
/// multi-core arm (straight-through, speculative twin, resume) builds
/// its engine here so the knobs can never drift between arms.
fn engine_config(cfg: &DiffConfig) -> MulticoreConfig {
    let mut mc = MulticoreConfig::westmere(cfg.cores)
        .with_weave_batch(cfg.weave_batch)
        .with_quantum(cfg.quantum);
    if cfg.adaptive_quantum {
        mc = mc.with_adaptive_quantum();
    }
    if cfg.speculative {
        mc = mc.with_speculative_weave();
    }
    mc
}

/// The first observed disagreement between the engine and the oracle.
#[derive(Debug, Clone, PartialEq)]
pub enum Divergence {
    /// The delivered-exception streams differ at `index` on `core`
    /// (`None` = that side's stream ended first).
    Exceptions {
        /// Core whose streams differ.
        core: usize,
        /// Index of the first differing exception.
        index: usize,
        /// The engine's exception at that index, if any.
        engine: Option<CaliformsException>,
        /// The oracle's exception at that index, if any.
        oracle: Option<CaliformsException>,
    },
    /// Final memory/blacklist state differs at one byte. Each side is
    /// reported as *(data byte, is-security-byte)*.
    State {
        /// The differing byte's address.
        addr: u64,
        /// The engine's view.
        engine: (u8, bool),
        /// The oracle's view.
        oracle: (u8, bool),
    },
    /// An architectural counter differs on `core`.
    Counter {
        /// Core whose counter differs.
        core: usize,
        /// Counter name.
        name: &'static str,
        /// The engine's value.
        engine: u64,
        /// The oracle's value.
        oracle: u64,
    },
    /// A mid-run DMA read disagreed with the oracle's memory view at
    /// byte `index` of the transfer (or in the security-byte count,
    /// flagged by `index == usize::MAX`).
    Dma {
        /// Op index the DMA fired before.
        at_op: usize,
        /// Transfer start address.
        addr: u64,
        /// Differing byte index within the transfer.
        index: usize,
        /// The engine-side value.
        engine: u64,
        /// The oracle-side value.
        oracle: u64,
    },
    /// The engine panicked on a worker thread (multi-core replays) —
    /// a divergence by definition: the oracle never panics on a valid
    /// pack.
    EnginePanic {
        /// Core whose worker panicked.
        core: usize,
        /// The panic message.
        message: String,
    },
    /// A speculative-weave replay ([`DiffConfig::speculative`]) broke
    /// the bit-identity contract with its serial-weave twin: commits
    /// and residue re-execution must reproduce the serial round-robin
    /// weave exactly (DESIGN.md §15).
    Speculative {
        /// What disagreed between the speculative and serial runs.
        detail: String,
    },
    /// A checkpoint+resume replay ([`DiffConfig::resume_at`]) broke the
    /// bit-identity contract: the resumed run disagreed with the
    /// straight-through run, or the checkpoint machinery itself failed.
    Resume {
        /// Index of the offending checkpoint in capture order
        /// (`usize::MAX` = the checkpointed run itself diverged before
        /// any resume was attempted).
        checkpoint: usize,
        /// What disagreed.
        detail: String,
    },
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Divergence::Exceptions {
                core,
                index,
                engine,
                oracle,
            } => write!(
                f,
                "core {core}: exception stream differs at index {index}: \
                 engine={engine:?} oracle={oracle:?}"
            ),
            Divergence::State {
                addr,
                engine,
                oracle,
            } => write!(
                f,
                "final state differs at {addr:#x}: engine=(byte {:#04x}, security {}) \
                 oracle=(byte {:#04x}, security {})",
                engine.0, engine.1, oracle.0, oracle.1
            ),
            Divergence::Counter {
                core,
                name,
                engine,
                oracle,
            } => write!(
                f,
                "core {core}: counter {name} differs: engine={engine} oracle={oracle}"
            ),
            Divergence::Dma {
                at_op,
                addr,
                index,
                engine,
                oracle,
            } => write!(
                f,
                "DMA before op {at_op} at {addr:#x} differs at byte {index}: \
                 engine={engine} oracle={oracle}"
            ),
            Divergence::EnginePanic { core, message } => {
                write!(f, "engine worker for core {core} panicked: {message}")
            }
            Divergence::Speculative { detail } => {
                write!(f, "speculative weave diverged from serial weave: {detail}")
            }
            Divergence::Resume { checkpoint, detail } => {
                write!(f, "checkpoint {checkpoint} resume diverged: {detail}")
            }
        }
    }
}

/// Compares two delivered-exception streams.
fn diff_exceptions(
    core: usize,
    engine: &[CaliformsException],
    oracle: &[CaliformsException],
) -> Option<Divergence> {
    let n = engine.len().max(oracle.len());
    for i in 0..n {
        let e = engine.get(i).copied();
        let o = oracle.get(i).copied();
        if e != o {
            return Some(Divergence::Exceptions {
                core,
                index: i,
                engine: e,
                oracle: o,
            });
        }
    }
    None
}

/// Compares the semantic counters of one core.
fn diff_counters(core: usize, stats: &SimStats, oracle: OracleCounters) -> Option<Divergence> {
    let pairs: [(&'static str, u64, u64); 7] = [
        ("instructions", stats.instructions, oracle.instructions),
        ("loads", stats.loads, oracle.loads),
        ("stores", stats.stores, oracle.stores),
        ("cforms", stats.cforms, oracle.cforms),
        (
            "stores_suppressed",
            stats.stores_suppressed,
            oracle.stores_suppressed,
        ),
        (
            "exceptions_delivered",
            stats.exceptions_delivered,
            oracle.exceptions_delivered,
        ),
        (
            "exceptions_suppressed",
            stats.exceptions_suppressed,
            oracle.exceptions_suppressed,
        ),
    ];
    for (name, e, o) in pairs {
        if e != o {
            return Some(Divergence::Counter {
                core,
                name,
                engine: e,
                oracle: o,
            });
        }
    }
    None
}

/// Compares one line's engine snapshot against the oracle's canonical
/// line, byte by byte.
fn diff_line(
    line_addr: u64,
    engine_data: &[u8; 64],
    engine_mask: u64,
    oracle: &califorms_core::CaliformedLine,
) -> Option<Divergence> {
    for (i, &byte) in engine_data.iter().enumerate() {
        let e = (byte, engine_mask >> i & 1 == 1);
        let o = (oracle.read_byte(i), oracle.is_security_byte(i));
        if e != o {
            return Some(Divergence::State {
                addr: line_addr + i as u64,
                engine: e,
                oracle: o,
            });
        }
    }
    None
}

/// Diffs the final state over the oracle's touched lines, reading the
/// engine through `snapshot`, with the optional scratch-copy fault
/// applied to lines for which `faulted` returns true.
fn diff_state(
    mem: &FlatMemory,
    snapshot: impl Fn(u64) -> califorms_core::CaliformedLine,
    faulted: impl Fn(u64) -> bool,
) -> Option<Divergence> {
    for (line_addr, oline) in mem.lines() {
        let eline = snapshot(line_addr);
        let mut emask = eline.security_mask();
        if faulted(line_addr) {
            // The injected off-by-one: a scratch copy of the L1
            // security-byte mask, shifted one position.
            emask <<= 1;
        }
        if let Some(d) = diff_line(line_addr, eline.data(), emask, oline) {
            return Some(d);
        }
    }
    None
}

/// Replays `pack` through the configured engine and the oracle and
/// returns the first divergence (`None` = byte-exact agreement).
///
/// `events` (single-core only) interleave DMA reads / swap cycles into
/// the replay; pass `&[]` for a pure replay. For `cfg.cores > 1` the
/// pack must be interleaving-independent (the fuzzer's multi-core
/// grammar guarantees this) and `events` must be empty.
///
/// # Panics
///
/// Panics where the engines would (corrupt pack, misaligned CFORM on
/// the main replay path, unbalanced mask pops) and if events are passed
/// to a multi-core diff.
pub fn diff_pack(pack: &TracePack, events: &[SysEvent], cfg: &DiffConfig) -> Option<Divergence> {
    assert!(cfg.cores >= 1, "need at least one core");
    if cfg.cores == 1 {
        diff_single(pack, events, cfg)
    } else {
        assert!(events.is_empty(), "system events are single-core only");
        diff_multicore(pack, cfg)
    }
}

fn apply_event(hierarchy: &mut Hierarchy, mem: &FlatMemory, ev: &SysEvent) -> Option<Divergence> {
    match *ev {
        SysEvent::Dma { at_op, addr, len } => {
            let t = DmaEngine::respecting().read(hierarchy, addr, len);
            let (expect, security) = mem.read_bytes(addr, len);
            for (i, (&e, &o)) in t.data.iter().zip(expect.iter()).enumerate() {
                if e != o {
                    return Some(Divergence::Dma {
                        at_op,
                        addr,
                        index: i,
                        engine: u64::from(e),
                        oracle: u64::from(o),
                    });
                }
            }
            if t.security_bytes_seen != security {
                return Some(Divergence::Dma {
                    at_op,
                    addr,
                    index: usize::MAX,
                    engine: t.security_bytes_seen as u64,
                    oracle: security as u64,
                });
            }
            None
        }
        SysEvent::SwapCycle { page_addr, .. } => {
            let mut swap = SwapManager::new();
            swap.swap_out(hierarchy, page_addr);
            swap.swap_in(hierarchy, page_addr);
            None
        }
    }
}

fn diff_single(pack: &TracePack, events: &[SysEvent], cfg: &DiffConfig) -> Option<Divergence> {
    let ops: Vec<TraceOp> = pack.to_vec();
    let mut events: Vec<&SysEvent> = events.iter().collect();
    events.sort_by_key(|e| e.at_op());
    let mut next_event = 0usize;

    let mut engine = Engine::westmere();
    let mut mem = FlatMemory::new();
    let mut core = OracleCore::new();

    for (i, &op) in ops.iter().enumerate() {
        while next_event < events.len() && events[next_event].at_op() <= i {
            if let Some(d) = apply_event(&mut engine.hierarchy, &mem, events[next_event]) {
                return Some(d);
            }
            next_event += 1;
        }
        engine.step(op);
        core.step(&mut mem, op);
    }
    while next_event < events.len() {
        if let Some(d) = apply_event(&mut engine.hierarchy, &mem, events[next_event]) {
            return Some(d);
        }
        next_event += 1;
    }

    let hierarchy = &engine.hierarchy;
    let fault = cfg.fault;
    if let Some(d) = diff_state(
        &mem,
        |line| hierarchy.snapshot_line(line),
        |line| matches!(fault, Some(FaultInjection::L1MaskOffByOne)) && hierarchy.l1_contains(line),
    ) {
        return Some(d);
    }
    if let Some(d) = diff_exceptions(0, engine.delivered_exceptions(), core.exceptions()) {
        return Some(d);
    }
    let outcome = engine.finish();
    if let Some(d) = diff_counters(0, &outcome.stats, core.counters()) {
        return Some(d);
    }
    if let Some(interval) = cfg.resume_at {
        return diff_resume_single(pack, interval);
    }
    None
}

/// Oracle replay of a pack dealt to `cores` lanes with the engine's
/// round-robin (op `i` → lane `i % cores`), in global index order
/// against one shared flat memory.
fn oracle_replay_lanes(pack: &TracePack, cores: usize) -> (FlatMemory, Vec<OracleCore>) {
    let mut mem = FlatMemory::new();
    let mut lanes: Vec<OracleCore> = (0..cores).map(|_| OracleCore::new()).collect();
    for (i, op) in pack.iter().enumerate() {
        lanes[i % cores].step(&mut mem, op);
    }
    (mem, lanes)
}

fn diff_multicore(pack: &TracePack, cfg: &DiffConfig) -> Option<Divergence> {
    let mc = MulticoreEngine::new(engine_config(cfg));
    let (outcome, hierarchy): (_, CoherentHierarchy) = match mc.try_run_pack_with_state(pack) {
        Ok(pair) => pair,
        Err(err) => {
            // An engine panic is a divergence only if the oracle replays
            // the same pack cleanly. On an *invalid* stream (unbalanced
            // mask pop, misaligned CFORM — which a shrinker's candidate
            // reductions can manufacture) both sides fault: that is
            // agreement, not a counterexample.
            let (core, message) = match err {
                RunError::Panic(p) => (p.core, p.message),
                other => (other.core().unwrap_or(0), other.to_string()),
            };
            let cores = cfg.cores;
            let oracle_panics = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                oracle_replay_lanes(pack, cores);
            }))
            .is_err();
            return if oracle_panics {
                None
            } else {
                Some(Divergence::EnginePanic { core, message })
            };
        }
    };

    if cfg.speculative {
        if let Some(d) = diff_speculative_vs_serial(pack, cfg, &outcome) {
            return Some(d);
        }
    }

    if let Some(interval) = cfg.resume_at {
        if let Some(d) = diff_resume_multicore(pack, cfg, interval, &outcome) {
            return Some(d);
        }
    }

    let (mem, lanes) = oracle_replay_lanes(pack, cfg.cores);

    if let Some(d) = diff_state(&mem, |line| hierarchy.snapshot_line(line), |_| false) {
        return Some(d);
    }
    for (c, lane) in lanes.iter().enumerate() {
        if let Some(d) = diff_exceptions(c, &outcome.exceptions[c], lane.exceptions()) {
            return Some(d);
        }
        if let Some(d) = diff_counters(c, &outcome.stats.per_core[c], lane.counters()) {
            return Some(d);
        }
    }
    None
}

/// The speculative-weave bit-identity arm ([`DiffConfig::speculative`]):
/// replay the pack once more through the serial round-robin weave and
/// require the outcome identical to the speculative run `spec` —
/// exceptions, per-core/combined/weave stats, and the runtime counters
/// with the spec-only bookkeeping masked out
/// ([`califorms_sim::RuntimeStats::without_spec`]; the serial twin's
/// spec counters are zero by construction, so both sides are masked
/// symmetrically). Committed epochs and re-executed residue alike must
/// reproduce the serial weave exactly (DESIGN.md §15).
fn diff_speculative_vs_serial(
    pack: &TracePack,
    cfg: &DiffConfig,
    spec: &califorms_sim::MulticoreOutcome,
) -> Option<Divergence> {
    let rt = &spec.stats.runtime;
    if rt.spec_epochs != rt.spec_commits + rt.spec_aborts {
        return Some(Divergence::Speculative {
            detail: format!(
                "inconsistent speculative accounting: {} epochs != {} commits + {} aborts",
                rt.spec_epochs, rt.spec_commits, rt.spec_aborts
            ),
        });
    }
    let serial_cfg = DiffConfig {
        speculative: false,
        ..*cfg
    };
    let serial = match MulticoreEngine::new(engine_config(&serial_cfg)).try_run_pack(pack) {
        Ok(outcome) => outcome,
        Err(err) => {
            return Some(Divergence::Speculative {
                detail: format!("serial twin failed where the speculative run succeeded: {err}"),
            })
        }
    };
    if spec.exceptions != serial.exceptions {
        return Some(Divergence::Speculative {
            detail: "delivered exceptions differ from the serial twin".into(),
        });
    }
    if spec.stats.per_core != serial.stats.per_core {
        return Some(Divergence::Speculative {
            detail: "per-core stats differ from the serial twin".into(),
        });
    }
    if spec.stats.combined != serial.stats.combined {
        return Some(Divergence::Speculative {
            detail: "combined stats differ from the serial twin".into(),
        });
    }
    if spec.stats.weave != serial.stats.weave {
        return Some(Divergence::Speculative {
            detail: "weave breakdown differs from the serial twin".into(),
        });
    }
    if spec.stats.runtime.without_spec() != serial.stats.runtime.without_spec() {
        return Some(Divergence::Speculative {
            detail: "runtime counters differ from the serial twin".into(),
        });
    }
    None
}

/// The `resume_at` check, multi-core: checkpoint the run every
/// `interval` quantum boundaries, resume from **every** captured
/// checkpoint, and require bit-identity (stats incl. runtime/weave
/// counters, exceptions) with the straight-through `reference`.
fn diff_resume_multicore(
    pack: &TracePack,
    cfg: &DiffConfig,
    interval: u64,
    reference: &califorms_sim::MulticoreOutcome,
) -> Option<Divergence> {
    let mc = MulticoreEngine::new(engine_config(cfg));
    let (full, checkpoints) = match mc.try_run_pack_checkpointed(pack, interval) {
        Ok(pair) => pair,
        Err(err) => {
            return Some(Divergence::Resume {
                checkpoint: usize::MAX,
                detail: format!("checkpointed run failed: {err}"),
            })
        }
    };
    if full.stats != reference.stats || full.exceptions != reference.exceptions {
        return Some(Divergence::Resume {
            checkpoint: usize::MAX,
            detail: "checkpoint capture perturbed the run".into(),
        });
    }
    for (i, bytes) in checkpoints.iter().enumerate() {
        match MulticoreEngine::try_resume_pack(pack, bytes) {
            Ok(resumed) => {
                if resumed.stats != reference.stats {
                    return Some(Divergence::Resume {
                        checkpoint: i,
                        detail: "resumed stats differ from the straight-through run".into(),
                    });
                }
                if resumed.exceptions != reference.exceptions {
                    return Some(Divergence::Resume {
                        checkpoint: i,
                        detail: "resumed exceptions differ from the straight-through run".into(),
                    });
                }
            }
            Err(err) => {
                return Some(Divergence::Resume {
                    checkpoint: i,
                    detail: format!("resume failed: {err}"),
                })
            }
        }
    }
    None
}

/// The `resume_at` check, single-core: as
/// [`diff_resume_multicore`], with the interval counted in decode
/// batches ([`Engine::REPLAY_BATCH`] ops each).
fn diff_resume_single(pack: &TracePack, interval: u64) -> Option<Divergence> {
    let reference = Engine::westmere().run_pack(pack);
    let (full, checkpoints) = Engine::westmere().run_pack_checkpointed(pack, interval);
    if full != reference {
        return Some(Divergence::Resume {
            checkpoint: usize::MAX,
            detail: "checkpoint capture perturbed the run".into(),
        });
    }
    for (i, bytes) in checkpoints.iter().enumerate() {
        match Engine::resume_pack(pack, bytes) {
            Ok(resumed) if resumed == reference => {}
            Ok(_) => {
                return Some(Divergence::Resume {
                    checkpoint: i,
                    detail: "resumed outcome differs from the straight-through run".into(),
                })
            }
            Err(err) => {
                return Some(Divergence::Resume {
                    checkpoint: i,
                    detail: format!("resume failed: {err}"),
                })
            }
        }
    }
    None
}

/// One case of the crash/corruption fault campaign (DESIGN.md §14) —
/// the harness-driven faults beyond [`FaultInjection::L1MaskOffByOne`].
/// Every case must surface as a *typed* error within the watchdog
/// deadline; [`run_fault_campaign`] verifies that.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultCampaign {
    /// Kill `core`'s worker thread (in-process panic hook) at the start
    /// of quantum `quantum` — must surface as `RunError::Panic`.
    KillWorker {
        /// Core whose worker is killed.
        core: usize,
        /// Quantum at which the kill fires.
        quantum: u64,
    },
    /// Stall `core`'s worker long enough to trip the barrier watchdog —
    /// must surface as `RunError::Stall` naming the core.
    StallWorker {
        /// Core whose worker stalls.
        core: usize,
    },
    /// Truncate a captured checkpoint to `keep` bytes before resuming —
    /// must surface as `RunError::Checkpoint`, never a panic.
    TruncateCheckpoint {
        /// Bytes of the checkpoint kept (the rest is cut).
        keep: usize,
    },
    /// Flip one byte (XOR `0xFF` at `at % len`) in a captured checkpoint
    /// before resuming — must be caught typed (checksum or field
    /// validation), never a panic.
    FlipCheckpointByte {
        /// Byte position to corrupt (taken modulo the checkpoint size).
        at: usize,
    },
}

/// Runs one [`FaultCampaign`] case against a multi-core replay of
/// `pack` and verifies the fault surfaced as the *typed* error the case
/// demands. `Ok` carries a description of the observed error;
/// `Err` means the campaign found a robustness bug (wrong error class,
/// or no error at all).
///
/// The stall case uses a deliberately short watchdog so the campaign
/// stays fast; kill/stall need `cfg.cores ≥ 2`.
pub fn run_fault_campaign(
    pack: &TracePack,
    campaign: FaultCampaign,
    cfg: &DiffConfig,
) -> Result<String, String> {
    let base = MulticoreConfig::westmere(cfg.cores.max(2))
        .with_weave_batch(cfg.weave_batch)
        .with_quantum(cfg.quantum);
    match campaign {
        FaultCampaign::KillWorker { core, quantum } => {
            let mc = MulticoreEngine::new(base.with_fault(FaultPlan {
                kill_at: Some((core, quantum)),
                ..FaultPlan::default()
            }));
            match mc.try_run_pack(pack) {
                Err(RunError::Panic(p)) if p.core == core => Ok(format!("typed worker panic: {p}")),
                Err(other) => Err(format!("wrong error class for a kill: {other}")),
                Ok(_) => Err("killed worker went unnoticed".into()),
            }
        }
        FaultCampaign::StallWorker { core } => {
            let mc = MulticoreEngine::new(
                base.with_watchdog(Some(std::time::Duration::from_millis(50)))
                    .with_fault(FaultPlan {
                        stall_at: Some((core, 0, 400)),
                        ..FaultPlan::default()
                    }),
            );
            match mc.try_run_pack(pack) {
                Err(RunError::Stall(s)) if s.core == core => Ok(format!("typed worker stall: {s}")),
                Err(other) => Err(format!("wrong error class for a stall: {other}")),
                Ok(_) => Err("stalled worker went unnoticed".into()),
            }
        }
        FaultCampaign::TruncateCheckpoint { keep } => {
            let bytes = first_checkpoint(pack, &base)?;
            let cut = &bytes[..keep.min(bytes.len().saturating_sub(1))];
            match MulticoreEngine::try_resume_pack(pack, cut) {
                Err(RunError::Checkpoint(e)) => Ok(format!("typed checkpoint error: {e}")),
                Err(other) => Err(format!("wrong error class for truncation: {other}")),
                Ok(_) => Err(format!("truncation to {} bytes went unnoticed", cut.len())),
            }
        }
        FaultCampaign::FlipCheckpointByte { at } => {
            let mut bytes = first_checkpoint(pack, &base)?;
            let at = at % bytes.len();
            bytes[at] ^= 0xFF;
            match MulticoreEngine::try_resume_pack(pack, &bytes) {
                Err(RunError::Checkpoint(e)) => Ok(format!("typed checkpoint error: {e}")),
                Err(other) => Err(format!("wrong error class for corruption: {other}")),
                Ok(_) => Err(format!("flipped byte {at} went unnoticed")),
            }
        }
    }
}

/// The first checkpoint of a short checkpointed replay — the corpus the
/// truncation/corruption campaign cases mutate.
fn first_checkpoint(pack: &TracePack, base: &MulticoreConfig) -> Result<Vec<u8>, String> {
    // Stream the checkpoints and keep only the first — accumulating
    // them all at interval 1 is O(quanta × checkpoint size) memory.
    let mut first = None;
    MulticoreEngine::new(*base)
        .try_run_pack_checkpointed_with(pack, 1, |bytes| {
            if first.is_none() {
                first = Some(bytes);
            }
        })
        .map_err(|e| format!("checkpointed run failed: {e}"))?;
    first.ok_or_else(|| "run too short to checkpoint".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_pack_agrees_single_core() {
        let pack = TracePack::from_ops([
            TraceOp::Store {
                addr: 0x1000,
                size: 8,
            },
            TraceOp::Cform {
                line_addr: 0x1000,
                attrs: 1 << 20,
                mask: 1 << 20,
            },
            TraceOp::Load {
                addr: 0x1014,
                size: 1,
            },
            TraceOp::Load {
                addr: 0x1000,
                size: 8,
            },
        ]);
        assert_eq!(diff_pack(&pack, &[], &DiffConfig::single()), None);
    }

    #[test]
    fn simple_pack_agrees_multicore() {
        let ops: Vec<TraceOp> = (0..64u64)
            .map(|i| TraceOp::Store {
                addr: 0x10_0000 + (i % 2) * 0x8_0000 + (i / 2) * 8,
                size: 8,
            })
            .collect();
        let pack = TracePack::from_ops(ops);
        assert_eq!(diff_pack(&pack, &[], &DiffConfig::multicore(2, 1)), None);
        assert_eq!(diff_pack(&pack, &[], &DiffConfig::multicore(2, 64)), None);
    }

    #[test]
    fn injected_mask_fault_is_caught() {
        let pack = TracePack::from_ops([TraceOp::Cform {
            line_addr: 0x2000,
            attrs: 1 << 7,
            mask: 1 << 7,
        }]);
        let cfg = DiffConfig {
            fault: Some(FaultInjection::L1MaskOffByOne),
            ..DiffConfig::single()
        };
        let d = diff_pack(&pack, &[], &cfg).expect("scratch-copy fault must diverge");
        assert!(matches!(d, Divergence::State { .. }));
        // Without the fault the same pack agrees.
        assert_eq!(diff_pack(&pack, &[], &DiffConfig::single()), None);
    }

    #[test]
    fn invalid_stream_faulting_on_both_sides_is_agreement() {
        // An unbalanced MaskPop (the kind of stream a shrinker's
        // candidate reductions manufacture) panics the engine worker
        // *and* the oracle: that is agreement, not an EnginePanic
        // divergence — otherwise shrinking would converge on unrelated
        // invalid packs.
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let pack = TracePack::from_ops([TraceOp::Exec(1), TraceOp::MaskPop]);
        let d = diff_pack(&pack, &[], &DiffConfig::multicore(2, 64));
        std::panic::set_hook(prev_hook);
        assert_eq!(d, None);
    }

    #[test]
    fn dma_event_checks_memory_view_mid_run() {
        let pack = TracePack::from_ops([
            TraceOp::Store {
                addr: 0x3000,
                size: 16,
            },
            TraceOp::Cform {
                line_addr: 0x3000,
                attrs: 1 << 4,
                mask: 1 << 4,
            },
            TraceOp::Exec(10),
        ]);
        let events = [SysEvent::Dma {
            at_op: 2,
            addr: 0x3000,
            len: 16,
        }];
        assert_eq!(diff_pack(&pack, &events, &DiffConfig::single()), None);
    }

    /// A workload busy enough to cross several quantum boundaries on
    /// every core count the resume matrix uses.
    fn resume_ops() -> Vec<TraceOp> {
        let mut ops = Vec::new();
        for i in 0..600u64 {
            ops.push(TraceOp::Exec((i % 37) as u32 + 1));
            ops.push(TraceOp::Store {
                addr: 0x4000 + (i % 96) * 8,
                size: 8,
            });
            ops.push(TraceOp::Load {
                addr: 0x4000 + ((i * 7) % 96) * 8,
                size: 8,
            });
        }
        ops
    }

    /// The acceptance matrix: checkpoint+resume bit-identity at
    /// 1/2/4 cores × weave batches {1, 64}.
    #[test]
    fn resume_mode_agrees_across_core_and_batch_matrix() {
        let pack = TracePack::from_ops(resume_ops());
        for cores in [1usize, 2, 4] {
            for batch in [1u32, 64] {
                let cfg = DiffConfig {
                    resume_at: Some(2),
                    ..DiffConfig::multicore(cores, batch)
                };
                assert_eq!(
                    diff_pack(&pack, &[], &cfg),
                    None,
                    "cores={cores} batch={batch}"
                );
            }
        }
    }

    /// A workload with genuine cross-core coherence traffic: every core
    /// hammers the same handful of lines, so the speculative weave sees
    /// both conflict-heavy epochs (aborts + residue re-execution) and,
    /// interleaved with disjoint strides, conflict-free ones (commits).
    fn sharing_ops(cores: u64) -> Vec<TraceOp> {
        let mut ops = Vec::new();
        for i in 0..400u64 {
            for c in 0..cores {
                ops.push(TraceOp::Exec((i % 23) as u32 + 1));
                // Hot shared line (false sharing across all cores).
                ops.push(TraceOp::Store {
                    addr: 0x8000 + (i % 8) * 8,
                    size: 8,
                });
                // Core-private stride (fills conflict-free epochs).
                ops.push(TraceOp::Load {
                    addr: 0x2_0000 + c * 0x1000 + (i % 64) * 8,
                    size: 8,
                });
            }
        }
        ops
    }

    /// The tentpole acceptance matrix: the speculative weave is
    /// bit-identical to the serial weave at 2/4 cores × weave batches
    /// {1, 64}, on both a sharing-heavy and a mostly-private workload,
    /// including checkpoint+resume replays. (`cores == 1` replays
    /// through the single-core [`Engine`], which has no weave.)
    #[test]
    fn speculative_weave_agrees_across_core_and_batch_matrix() {
        for cores in [2usize, 4] {
            let packs = [
                TracePack::from_ops(resume_ops()),
                TracePack::from_ops(sharing_ops(cores as u64)),
            ];
            for (p, pack) in packs.iter().enumerate() {
                for batch in [1u32, 64] {
                    let cfg = DiffConfig {
                        speculative: true,
                        resume_at: Some(2),
                        ..DiffConfig::multicore(cores, batch)
                    };
                    assert_eq!(
                        diff_pack(pack, &[], &cfg),
                        None,
                        "pack={p} cores={cores} batch={batch}"
                    );
                }
            }
        }
    }

    /// Checkpoint+resume under the adaptive quantum controller: a
    /// checkpoint taken mid-run must restore the controller's *current*
    /// quantum (not the configured one), or every resumed run diverges
    /// from the straight-through reference at the next boundary.
    #[test]
    fn resume_restores_adaptive_quantum_mid_run() {
        let pack = TracePack::from_ops(sharing_ops(4));
        for cores in [2usize, 4] {
            for speculative in [false, true] {
                let cfg = DiffConfig {
                    adaptive_quantum: true,
                    speculative,
                    resume_at: Some(1),
                    ..DiffConfig::multicore(cores, 64)
                };
                assert_eq!(
                    diff_pack(&pack, &[], &cfg),
                    None,
                    "cores={cores} speculative={speculative}"
                );
            }
        }
    }

    /// Every campaign case must surface as its typed error class.
    #[test]
    fn fault_campaign_cases_surface_typed() {
        let pack = TracePack::from_ops(resume_ops());
        let cfg = DiffConfig::multicore(2, 64);
        for campaign in [
            FaultCampaign::KillWorker {
                core: 1,
                quantum: 0,
            },
            FaultCampaign::StallWorker { core: 0 },
            FaultCampaign::TruncateCheckpoint { keep: 9 },
            FaultCampaign::FlipCheckpointByte { at: 1234 },
        ] {
            run_fault_campaign(&pack, campaign, &cfg)
                .unwrap_or_else(|e| panic!("{campaign:?}: {e}"));
        }
    }

    #[test]
    fn swap_cycle_is_architecturally_invisible() {
        let pack = TracePack::from_ops([
            TraceOp::Store {
                addr: 0x10_0000,
                size: 8,
            },
            TraceOp::Cform {
                line_addr: 0x10_0000,
                attrs: 1 << 9,
                mask: 1 << 9,
            },
            TraceOp::Load {
                addr: 0x10_0000,
                size: 8,
            },
        ]);
        let events = [SysEvent::SwapCycle {
            at_op: 2,
            page_addr: 0x10_0000,
        }];
        assert_eq!(diff_pack(&pack, &events, &DiffConfig::single()), None);
    }
}
