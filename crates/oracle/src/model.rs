//! The flat reference model: the paper's semantics with no caches, LSQ
//! or coherence.
//!
//! [`FlatMemory`] is a plain line-address → [`CaliformedLine`] map — one
//! canonical *(data, blacklist-mask)* pair per 64 B line, nothing else.
//! Because there is only one copy of every line, spill/fill conversions
//! are no-ops by construction and the zeroing invariant (data under a
//! security byte is zero) is structural, courtesy of
//! [`CaliformedLine`].
//!
//! [`OracleCore`] replays a [`TraceOp`] stream against a `FlatMemory`
//! with byte-exact exception semantics mirroring
//! [`califorms_sim::Engine::step`]:
//!
//! * a load or store that touches a blacklisted byte faults at the
//!   **lowest-addressed** violating byte of the access (line-crossing
//!   accesses are checked chunk by chunk in ascending address order);
//! * a faulting store chunk is suppressed in full, other chunks of the
//!   same access still commit (the cache controller splits at line
//!   boundaries);
//! * `CFORM`/`CFORM-NT` follow the Table 1 K-map, fault before
//!   committing anything, and zero every byte whose state changes;
//! * stores synthesise the deterministic address-derived payload the
//!   replay engines use ([`califorms_sim::engine::store_pattern`]);
//! * `MaskPush`/`MaskPop` drive a real
//!   [`ExceptionMask`] so delivery/suppression accounting matches.
//!
//! The `pc` carried by each exception is the 1-based index of the op in
//! the replayed stream (per core), exactly as the engines count it.

use califorms_core::{
    AccessKind, CaliformedLine, CaliformsException, CformInstruction, CoreError, ExceptionKind,
    ExceptionMask, LINE_BYTES,
};
use califorms_sim::engine::store_pattern;
use califorms_sim::{line_base, line_offset, TraceOp};
use std::collections::BTreeMap;

/// The flat, cache-free memory: one canonical line per touched line
/// address. Untouched lines read as all-zero, non-califormed lines —
/// the same as the simulator's demand-created DRAM.
#[derive(Debug, Default, Clone)]
pub struct FlatMemory {
    lines: BTreeMap<u64, CaliformedLine>,
}

impl FlatMemory {
    /// An empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// The canonical state of the line holding `line_addr` (zeroed if
    /// never touched).
    pub fn line(&self, line_addr: u64) -> CaliformedLine {
        self.lines
            .get(&line_addr)
            .copied()
            .unwrap_or_else(CaliformedLine::zeroed)
    }

    /// Every touched line, ascending by address — the diff domain.
    pub fn lines(&self) -> impl Iterator<Item = (u64, &CaliformedLine)> {
        self.lines.iter().map(|(&a, l)| (a, l))
    }

    /// Number of touched lines.
    pub fn touched_lines(&self) -> usize {
        self.lines.len()
    }

    fn line_mut(&mut self, line_addr: u64) -> &mut CaliformedLine {
        self.lines.entry(line_addr).or_default()
    }

    /// What a califorms-respecting reader (the core, a respecting DMA
    /// engine, the I/O export path) sees for `[addr, addr + len)`:
    /// the data with zeros at blacklisted positions, plus the number of
    /// security bytes in the range.
    pub fn read_bytes(&self, addr: u64, len: usize) -> (Vec<u8>, usize) {
        let mut data = Vec::with_capacity(len);
        let mut security = 0usize;
        for i in 0..len as u64 {
            let a = addr + i;
            let line = self.line(line_base(a));
            let off = line_offset(a);
            if line.is_security_byte(off) {
                security += 1;
                data.push(0);
            } else {
                data.push(line.read_byte(off));
            }
        }
        (data, security)
    }
}

/// Architectural counters of one replayed core, mirroring the fields of
/// [`califorms_sim::SimStats`] that are functions of program semantics
/// alone (no timing, no cache geometry).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct OracleCounters {
    /// Retired instructions.
    pub instructions: u64,
    /// Load ops replayed.
    pub loads: u64,
    /// Store ops replayed.
    pub stores: u64,
    /// `CFORM`/`CFORM-NT` ops replayed.
    pub cforms: u64,
    /// Stores suppressed by a security-byte violation.
    pub stores_suppressed: u64,
    /// Exceptions delivered to the handler.
    pub exceptions_delivered: u64,
    /// Exceptions suppressed by an armed whitelist mask.
    pub exceptions_suppressed: u64,
}

/// One core's replay state over a (possibly shared) [`FlatMemory`]:
/// whitelist mask, program counter, counters, and the recorded delivered
/// exceptions (capped like the engines cap theirs).
#[derive(Debug, Default, Clone)]
pub struct OracleCore {
    mask: ExceptionMask,
    pc: u64,
    counters: OracleCounters,
    exceptions: Vec<CaliformsException>,
}

/// Maps a `CFORM` K-map fault onto the privileged exception, mirroring
/// the simulator's mapping (Table 1 semantics).
fn kmap_exception(e: CoreError, line_addr: u64, pc: u64) -> CaliformsException {
    let (kind, index) = match e {
        CoreError::CformSetOnSecurityByte { index } => (ExceptionKind::CformDoubleSet, index),
        CoreError::CformUnsetOnNormalByte { index } => (ExceptionKind::CformUnsetNormal, index),
        other => unreachable!("CFORM faults are K-map faults: {other}"),
    };
    CaliformsException {
        fault_addr: line_addr + index as u64,
        access: AccessKind::Cform,
        kind,
        pc,
    }
}

impl OracleCore {
    /// A fresh core (disarmed mask, zero counters).
    pub fn new() -> Self {
        Self::default()
    }

    /// The counters accumulated so far.
    pub fn counters(&self) -> OracleCounters {
        let mut c = self.counters;
        c.exceptions_delivered = self.mask.delivered_count();
        c.exceptions_suppressed = self.mask.suppressed_count();
        c
    }

    /// Delivered exceptions in program order, capped at
    /// [`califorms_sim::Engine::MAX_RECORDED_EXCEPTIONS`] like the
    /// engines' records.
    pub fn exceptions(&self) -> &[CaliformsException] {
        &self.exceptions
    }

    fn deliver(&mut self, exception: Option<CaliformsException>) {
        if let Some(exc) = exception {
            if let Some(delivered) = self.mask.filter(exc) {
                if self.exceptions.len() < califorms_sim::Engine::MAX_RECORDED_EXCEPTIONS {
                    self.exceptions.push(delivered);
                }
            }
        }
    }

    /// Checks `[addr, addr + len)` against the blacklist without writing,
    /// returning the exception for the lowest-addressed violating byte.
    fn check_access(
        mem: &mut FlatMemory,
        addr: u64,
        len: usize,
        access: AccessKind,
        pc: u64,
    ) -> Option<CaliformsException> {
        let mut exception = None;
        let mut cur = addr;
        let end = addr + len as u64;
        while cur < end {
            let line_addr = line_base(cur);
            let offset = line_offset(cur);
            let chunk = ((LINE_BYTES as u64 - offset as u64).min(end - cur)) as usize;
            // Touch the line so it participates in the state diff even
            // when the access is a pure read of a cold line.
            let line = mem.line_mut(line_addr);
            let violating = line.security_mask() & califorms_core::range_mask(offset, chunk);
            if violating != 0 && exception.is_none() {
                exception = Some(CaliformsException {
                    fault_addr: line_addr + u64::from(violating.trailing_zeros()),
                    access,
                    kind: ExceptionKind::SecurityByteAccess,
                    pc,
                });
            }
            cur += chunk as u64;
        }
        exception
    }

    /// Commits a store of the deterministic replay payload, chunk by
    /// chunk: a violating chunk is suppressed in full (and reports the
    /// first violating byte), clean chunks commit.
    fn do_store(
        mem: &mut FlatMemory,
        addr: u64,
        len: usize,
        pc: u64,
    ) -> Option<CaliformsException> {
        let bytes = store_pattern(addr, len);
        let mut exception = None;
        let mut cur = addr;
        let end = addr + len as u64;
        let mut consumed = 0usize;
        while cur < end {
            let line_addr = line_base(cur);
            let offset = line_offset(cur);
            let chunk = ((LINE_BYTES as u64 - offset as u64).min(end - cur)) as usize;
            let line = mem.line_mut(line_addr);
            match line.write_bytes(offset, &bytes[consumed..consumed + chunk]) {
                Ok(()) => {}
                Err(CoreError::StoreToSecurityByte { index }) => {
                    if exception.is_none() {
                        exception = Some(CaliformsException {
                            fault_addr: line_addr + index as u64,
                            access: AccessKind::Store,
                            kind: ExceptionKind::SecurityByteAccess,
                            pc,
                        });
                    }
                }
                Err(other) => unreachable!("store can only fault on security bytes: {other}"),
            }
            cur += chunk as u64;
            consumed += chunk;
        }
        exception
    }

    /// Replays one trace op against `mem`, with the same architectural
    /// outcome (state change, exception site and kind, delivery vs
    /// suppression, counters) as [`califorms_sim::Engine::step`].
    ///
    /// # Panics
    ///
    /// Panics exactly where the engines do: a misaligned `CFORM` target,
    /// an unbalanced `MaskPop`, or an access wrapping the address space.
    pub fn step(&mut self, mem: &mut FlatMemory, op: TraceOp) {
        self.pc += 1;
        self.counters.instructions += op.instruction_count();
        match op {
            TraceOp::Exec(_) => {}
            TraceOp::Load { addr, size } => {
                self.counters.loads += 1;
                let exc = Self::check_access(mem, addr, size as usize, AccessKind::Load, self.pc);
                self.deliver(exc);
            }
            TraceOp::Store { addr, size } => {
                self.counters.stores += 1;
                let exc = Self::do_store(mem, addr, size as usize, self.pc);
                if exc.is_some() {
                    self.counters.stores_suppressed += 1;
                }
                self.deliver(exc);
            }
            TraceOp::Cform {
                line_addr,
                attrs,
                mask,
            }
            | TraceOp::CformNt {
                line_addr,
                attrs,
                mask,
            } => {
                // The non-temporal variant differs only in cache
                // placement; architecturally both are the same Table 1
                // state change, which is all the flat model has.
                self.counters.cforms += 1;
                let insn = CformInstruction::new(line_addr, attrs, mask);
                let line = mem.line_mut(line_addr);
                let exc = match insn.execute(line) {
                    Ok(_) => None,
                    Err(e) => Some(kmap_exception(e, line_addr, self.pc)),
                };
                self.deliver(exc);
            }
            TraceOp::MaskPush => self.mask.push_allow_all(),
            TraceOp::MaskPop => self.mask.pop_window(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn replay(ops: &[TraceOp]) -> (FlatMemory, OracleCore) {
        let mut mem = FlatMemory::new();
        let mut core = OracleCore::new();
        for &op in ops {
            core.step(&mut mem, op);
        }
        (mem, core)
    }

    #[test]
    fn store_then_load_is_clean() {
        let (mem, core) = replay(&[
            TraceOp::Store {
                addr: 0x1000,
                size: 8,
            },
            TraceOp::Load {
                addr: 0x1000,
                size: 8,
            },
        ]);
        assert!(core.exceptions().is_empty());
        let (data, sec) = mem.read_bytes(0x1000, 8);
        assert_eq!(data, store_pattern(0x1000, 8));
        assert_eq!(sec, 0);
    }

    #[test]
    fn rogue_load_faults_at_exact_byte_with_pc() {
        let (_, core) = replay(&[
            TraceOp::Cform {
                line_addr: 0x200,
                attrs: 1 << 5,
                mask: 1 << 5,
            },
            TraceOp::Load {
                addr: 0x203,
                size: 8,
            },
        ]);
        assert_eq!(core.exceptions().len(), 1);
        let exc = core.exceptions()[0];
        assert_eq!(exc.fault_addr, 0x205);
        assert_eq!(exc.access, AccessKind::Load);
        assert_eq!(exc.pc, 2, "pc is the 1-based op index");
    }

    #[test]
    fn violating_store_chunk_is_suppressed_others_commit() {
        // Blacklist byte 1 of the second line; store crosses into it.
        let (mem, core) = replay(&[
            TraceOp::Cform {
                line_addr: 0x40,
                attrs: 1 << 1,
                mask: 1 << 1,
            },
            TraceOp::Store {
                addr: 0x3C,
                size: 8,
            },
        ]);
        assert_eq!(core.counters().stores_suppressed, 1);
        assert_eq!(core.exceptions()[0].fault_addr, 0x41);
        // First-line chunk committed, second-line chunk suppressed.
        let pattern = store_pattern(0x3C, 8);
        let (data, _) = mem.read_bytes(0x3C, 4);
        assert_eq!(data, pattern[..4]);
        let (data, _) = mem.read_bytes(0x40, 4);
        assert_eq!(data, vec![0, 0, 0, 0]);
    }

    #[test]
    fn kmap_double_set_faults_and_commits_nothing() {
        let (mem, core) = replay(&[
            TraceOp::Cform {
                line_addr: 0,
                attrs: 0b11,
                mask: 0b11,
            },
            TraceOp::Cform {
                line_addr: 0,
                attrs: 0b110,
                mask: 0b110,
            },
        ]);
        assert_eq!(core.exceptions().len(), 1);
        assert_eq!(core.exceptions()[0].kind, ExceptionKind::CformDoubleSet);
        assert_eq!(core.exceptions()[0].fault_addr, 1);
        // The faulting CFORM committed nothing: byte 2 is still normal.
        assert!(!mem.line(0).is_security_byte(2));
    }

    #[test]
    fn mask_window_suppresses_but_counts() {
        let (_, core) = replay(&[
            TraceOp::Cform {
                line_addr: 0x80,
                attrs: 1,
                mask: 1,
            },
            TraceOp::MaskPush,
            TraceOp::Load {
                addr: 0x80,
                size: 1,
            },
            TraceOp::MaskPop,
            TraceOp::Load {
                addr: 0x80,
                size: 1,
            },
        ]);
        let c = core.counters();
        assert_eq!(c.exceptions_suppressed, 1);
        assert_eq!(c.exceptions_delivered, 1);
        assert_eq!(core.exceptions().len(), 1);
    }
}
