//! The 19 SPEC CPU2006 C/C++ benchmark profiles (Figure 10's x-axis).
//!
//! Parameter choice per benchmark follows its published memory character
//! (working-set studies, the paper's own observations — e.g. "perlbench is
//! notorious for being malloc-intensive", Section 8.2 — and the ZSim/SPEC
//! literature). The absolute values are calibration constants; what the
//! reproduction relies on is their *relative* ordering.

use califorms_layout::{CType, Field, Scalar, StructDef};

/// Characteristics of one synthetic benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchmarkProfile {
    /// Benchmark name (SPEC CPU2006).
    pub name: &'static str,
    /// Live heap-object population in steady state.
    pub live_objects: usize,
    /// Scalar fields per object (drives padding-byte count under the full
    /// policy).
    pub fields: usize,
    /// Length of the object's embedded `char` array (0 = none); drives
    /// object size and streaming behaviour.
    pub array_len: usize,
    /// Allocation+free pairs per 1000 steady-state memory operations
    /// (drives `CFORM` overhead).
    pub churn_per_kop: u32,
    /// Percent of accesses that are dependent pointer chases.
    pub chase_pct: u32,
    /// Percent of accesses that are sequential array streams.
    pub stream_pct: u32,
    /// Non-memory instructions per memory operation (compute intensity).
    pub exec_per_mem: u32,
    /// Fraction of beyond-L1 latency the core hides for this workload
    /// (memory-level parallelism; low = latency-bound pointer chaser).
    pub overlap: f64,
    /// Percent of accesses that target non-struct *global* data (large
    /// arrays, code-adjacent tables) whose layout no insertion policy
    /// touches. Real SPEC programs keep most of their footprint in such
    /// data, which dilutes the padding effect — without this the
    /// reproduction overshoots Figure 4 by ~2.5x.
    pub global_pct: u32,
    /// Function-call events per 1000 steady-state memory operations that
    /// allocate a fresh frame with califormable locals (dirty-before-use
    /// stack discipline, Section 6.1). Deep-recursion benchmarks pay for
    /// this even when they rarely call `malloc`.
    pub calls_per_kop: u32,
    /// Whether stack frames carry local arrays (game-tree searches keep
    /// board state in frames) — the intelligent policy instruments only
    /// these, which is what puts gobmk at the top of Figure 12.
    pub stack_arrays: bool,
    /// Appears in Figure 10 (hardware-latency study, 19 benchmarks).
    pub in_fig10: bool,
    /// Appears in the software evaluation (Figures 11/12, 16 benchmarks:
    /// dealII, omnetpp and gcc are excluded per Section 8.2).
    pub in_software_eval: bool,
}

impl BenchmarkProfile {
    /// The benchmark's representative struct type: `fields` scalars cycling
    /// through a C-like mix, an optional embedded `char` array, and a
    /// trailing function pointer (so the intelligent policy always has
    /// something to fence).
    pub fn struct_def(&self) -> StructDef {
        const MIX: [Scalar; 6] = [
            Scalar::Char,
            Scalar::Int,
            Scalar::Ptr,
            Scalar::Short,
            Scalar::Long,
            Scalar::Double,
        ];
        let mut fields: Vec<Field> = (0..self.fields)
            .map(|i| Field::new(format!("f{i}"), CType::Scalar(MIX[i % MIX.len()])))
            .collect();
        if self.array_len > 0 {
            fields.push(Field::new("buf", CType::char_array(self.array_len)));
        }
        fields.push(Field::new("next", CType::Scalar(Scalar::Ptr)));
        fields.push(Field::new("fp", CType::Scalar(Scalar::FnPtr)));
        StructDef::new(format!("{}_node", self.name), fields)
    }

    /// The benchmark's object-type population with allocation weights (in
    /// tenths): the pointer-bearing *node* (chase targets), a plain-scalar
    /// *record* (no arrays or pointers — the intelligent policy inserts
    /// nothing here, which is what separates Figure 12's overheads from
    /// Figure 11's), and, when the profile has an array, a *buffer* type.
    pub fn struct_defs(&self) -> Vec<(StructDef, u32)> {
        const PLAIN: [Scalar; 6] = [
            Scalar::Char,
            Scalar::Int,
            Scalar::Short,
            Scalar::Long,
            Scalar::Float,
            Scalar::Double,
        ];
        let record = StructDef::new(
            format!("{}_record", self.name),
            (0..self.fields.max(2))
                .map(|i| Field::new(format!("r{i}"), CType::Scalar(PLAIN[i % PLAIN.len()])))
                .collect(),
        );
        let node = self.struct_def();
        if self.array_len > 0 {
            let buffer = StructDef::new(
                format!("{}_buffer", self.name),
                vec![
                    Field::new("len", CType::Scalar(Scalar::Int)),
                    Field::new("buf", CType::char_array(self.array_len)),
                    Field::new("owner", CType::Scalar(Scalar::Ptr)),
                ],
            );
            vec![(node, 4), (record, 4), (buffer, 2)]
        } else {
            vec![(node, 5), (record, 5)]
        }
    }

    /// The locals of this benchmark's hot stack frames: plain scalars
    /// (with alignment holes the opportunistic policy harvests), plus a
    /// local buffer and a saved pointer when [`Self::stack_arrays`] is set
    /// (which is what the intelligent policy fences).
    pub fn frame_def(&self) -> StructDef {
        let mut fields = vec![
            Field::new("a", CType::Scalar(Scalar::Int)),
            Field::new("c", CType::Scalar(Scalar::Char)),
            Field::new("d", CType::Scalar(Scalar::Double)),
            Field::new("b", CType::Scalar(Scalar::Long)),
        ];
        if self.stack_arrays {
            fields.insert(2, Field::new("board", CType::char_array(48)));
            fields.push(Field::new("saved", CType::Scalar(Scalar::Ptr)));
        }
        StructDef::new(format!("{}_frame", self.name), fields)
    }

    /// Natural object size in bytes (weighted over the type population).
    pub fn natural_object_size(&self) -> usize {
        let defs = self.struct_defs();
        let total_w: u32 = defs.iter().map(|(_, w)| w).sum();
        let weighted: usize = defs
            .iter()
            .map(|(d, w)| d.layout_size() * *w as usize)
            .sum();
        weighted / total_w as usize
    }

    /// Natural working-set size in bytes.
    pub fn natural_wss(&self) -> usize {
        self.natural_object_size() * self.live_objects
    }
}

/// One row of the benchmark table: name, live, fields, array, churn,
/// chase%, stream%, exec/mem, overlap, global%, calls, stack_arrays,
/// fig10, sw.
type ProfileRow = (
    &'static str,
    usize,
    usize,
    usize,
    u32,
    u32,
    u32,
    u32,
    f64,
    u32,
    u32,
    bool,
    bool,
    bool,
);

/// All 19 profiles, in Figure 10's alphabetical order.
pub fn all_benchmarks() -> Vec<BenchmarkProfile> {
    let rows: [ProfileRow; 19] = [
        // A* path search: pointer-heavy graph walk, moderate churn.
        (
            "astar", 3_000, 6, 24, 8, 60, 10, 24, 0.62, 30, 25, false, true, true,
        ),
        // Burrows-Wheeler: big buffers, streaming, nearly no malloc.
        (
            "bzip2", 800, 4, 192, 1, 5, 70, 20, 0.78, 75, 10, false, true, true,
        ),
        // FEM library: allocation-rich C++, medium sets (excluded from sw eval).
        (
            "dealII", 2_500, 10, 48, 20, 30, 20, 23, 0.67, 35, 35, false, true, false,
        ),
        // Compiler: allocation-heavy, large irregular working set (excluded).
        (
            "gcc", 4_000, 12, 32, 35, 35, 15, 17, 0.62, 30, 40, false, true, false,
        ),
        // Go engine: tree search with heavy small-object churn.
        (
            "gobmk", 250, 8, 40, 28, 25, 10, 26, 0.72, 40, 70, true, true, true,
        ),
        // Video encoder: streaming macroblocks + frequent buffer allocs.
        (
            "h264ref", 1_500, 6, 160, 18, 10, 60, 34, 0.70, 65, 18, true, true, true,
        ),
        // Profile HMM search: tiny working set, compute-bound.
        (
            "hmmer", 100, 6, 32, 1, 5, 30, 36, 0.85, 60, 12, false, true, true,
        ),
        // Lattice Boltzmann: huge streaming arrays, no churn.
        (
            "lbm", 8_000, 4, 96, 0, 0, 90, 10, 0.82, 85, 2, false, true, true,
        ),
        // Quantum simulation: large sequential sweeps.
        (
            "libquantum",
            4_000,
            4,
            64,
            1,
            0,
            85,
            6,
            0.80,
            80,
            3,
            false,
            true,
            true,
        ),
        // Min-cost flow: the classic latency-bound pointer chaser, WSS ≫ L3.
        (
            "mcf", 80_000, 8, 0, 3, 70, 5, 2, 0.15, 25, 8, false, true, true,
        ),
        // Lattice QCD: big arrays, cache-hungry random sweeps.
        (
            "milc", 6_000, 6, 160, 2, 20, 50, 5, 0.45, 70, 6, false, true, true,
        ),
        // Molecular dynamics: compute-bound, small set.
        (
            "namd", 80, 8, 48, 0, 5, 35, 30, 0.82, 65, 10, false, true, true,
        ),
        // Discrete-event sim: pointer-chasing event lists, high churn (excluded).
        (
            "omnetpp", 8_000, 10, 24, 30, 50, 5, 12, 0.45, 20, 30, false, true, false,
        ),
        // Perl interpreter: "notorious for being malloc-intensive".
        (
            "perlbench",
            2_000,
            10,
            24,
            45,
            30,
            10,
            24,
            0.68,
            25,
            25,
            true,
            true,
            true,
        ),
        // Ray tracer: compute-bound with some allocation.
        (
            "povray", 100, 8, 32, 4, 15, 20, 23, 0.82, 55, 12, true, true, true,
        ),
        // Chess engine: tree search, modest memory.
        (
            "sjeng", 200, 8, 48, 3, 25, 10, 34, 0.74, 50, 18, true, true, true,
        ),
        // Sparse LP solver: large matrices, mixed access.
        (
            "soplex", 5_000, 6, 96, 2, 20, 50, 8, 0.55, 65, 15, false, true, true,
        ),
        // Speech recognition: streaming acoustic scores.
        (
            "sphinx3", 3_000, 5, 80, 3, 10, 65, 9, 0.63, 70, 20, true, true, true,
        ),
        // XML/XSLT: DOM pointer chasing with constant node churn.
        (
            "xalancbmk",
            7_000,
            9,
            24,
            8,
            55,
            5,
            3,
            0.35,
            20,
            10,
            false,
            true,
            true,
        ),
    ];
    rows.iter()
        .map(
            |&(
                name,
                live,
                fields,
                array,
                churn,
                chase,
                stream,
                exec,
                overlap,
                global_pct,
                calls,
                stack_arrays,
                fig10,
                sw,
            )| {
                BenchmarkProfile {
                    name,
                    live_objects: live,
                    fields,
                    array_len: array,
                    churn_per_kop: churn,
                    chase_pct: chase,
                    stream_pct: stream,
                    exec_per_mem: exec,
                    overlap,
                    global_pct,
                    calls_per_kop: calls,
                    stack_arrays,
                    in_fig10: fig10,
                    in_software_eval: sw,
                }
            },
        )
        .collect()
}

/// The 19 benchmarks of the Figure 10 latency study.
pub fn fig10_benchmarks() -> Vec<BenchmarkProfile> {
    all_benchmarks()
        .into_iter()
        .filter(|b| b.in_fig10)
        .collect()
}

/// The 16 benchmarks of the Figures 11/12 software evaluation.
pub fn software_eval_benchmarks() -> Vec<BenchmarkProfile> {
    all_benchmarks()
        .into_iter()
        .filter(|b| b.in_software_eval)
        .collect()
}

/// Looks up a profile by SPEC name.
pub fn by_name(name: &str) -> Option<BenchmarkProfile> {
    all_benchmarks().into_iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nineteen_benchmarks_sixteen_in_software_eval() {
        assert_eq!(all_benchmarks().len(), 19);
        assert_eq!(fig10_benchmarks().len(), 19);
        let sw = software_eval_benchmarks();
        assert_eq!(sw.len(), 16);
        for excluded in ["dealII", "gcc", "omnetpp"] {
            assert!(
                sw.iter().all(|b| b.name != excluded),
                "{excluded} is excluded from the software evaluation"
            );
        }
    }

    #[test]
    fn names_are_unique_and_sorted() {
        let names: Vec<&str> = all_benchmarks().iter().map(|b| b.name).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(names, sorted, "alphabetical unique order (Figure 10)");
    }

    #[test]
    fn struct_defs_have_attack_prone_fields() {
        for b in all_benchmarks() {
            let def = b.struct_def();
            assert!(
                def.fields.iter().any(|f| f.ty.is_attack_prone()),
                "{}: intelligent policy needs something to fence",
                b.name
            );
        }
    }

    #[test]
    fn working_sets_span_the_hierarchy() {
        let wss = |n: &str| by_name(n).unwrap().natural_wss();
        assert!(wss("hmmer") < 32 * 1024, "hmmer lives in the L1");
        assert!(wss("sjeng") < 256 * 1024, "sjeng lives in the L2");
        assert!(wss("mcf") > 2 * 1024 * 1024, "mcf spills the L3");
    }

    #[test]
    fn memory_bound_benchmarks_have_low_overlap() {
        assert!(by_name("mcf").unwrap().overlap < by_name("hmmer").unwrap().overlap);
        assert!(by_name("xalancbmk").unwrap().overlap < by_name("lbm").unwrap().overlap);
    }

    #[test]
    fn perlbench_is_the_churn_champion() {
        let max_churn = all_benchmarks()
            .iter()
            .max_by_key(|b| b.churn_per_kop)
            .unwrap()
            .name;
        assert_eq!(max_churn, "perlbench");
    }
}
