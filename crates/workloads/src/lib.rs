//! # califorms-workloads
//!
//! Synthetic stand-ins for the 19 SPEC CPU2006 C/C++ benchmarks the paper
//! evaluates (see DESIGN.md §2 for the substitution argument). Each
//! benchmark is described by a [`spec::BenchmarkProfile`] — working-set
//! size, allocation intensity, access-pattern mix, compute intensity and
//! memory-level parallelism — chosen to match the benchmark's published
//! memory character, because those characteristics are what drive the
//! paper's per-benchmark slowdown *shapes*:
//!
//! * padding slowdowns (Figures 4, 11, 12) scale with cache pressure →
//!   `mcf`, `milc`, `omnetpp` suffer, `hmmer`, `namd` don't;
//! * `CFORM` overheads scale with allocation churn → `perlbench`,
//!   `gobmk`, `h264ref` suffer;
//! * +1-cycle L2/L3 latency (Figure 10) scales with beyond-L1 access
//!   frequency → `xalancbmk` worst, `hmmer` best.
//!
//! [`generator`] turns a profile plus an insertion policy into a
//! deterministic trace of [`califorms_sim::TraceOp`]s: a heap-warmup phase
//! (allocating the benchmark's object population through
//! [`califorms_alloc::CaliformsHeap`], which emits the `CFORM`s) followed
//! by a steady-state phase mixing field accesses, array streaming, pointer
//! chasing and allocation churn.
//!
//! [`multicore`] generates *per-core shards* instead of one trace: the
//! sharing patterns (producer/consumer ring, false sharing, lock
//! contention, read-mostly shared table) that exercise the MESI-coherent
//! multi-core hierarchy of [`califorms_sim::MulticoreEngine`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generator;
pub mod multicore;
pub mod spec;

pub use generator::{generate, layout_for, run_workload, Workload, WorkloadConfig};
pub use multicore::{
    generate_mt, mt_config, run_mt, run_mt_outcome, MtPattern, MtWorkload, MtWorkloadConfig,
};
pub use spec::{fig10_benchmarks, software_eval_benchmarks, BenchmarkProfile};
