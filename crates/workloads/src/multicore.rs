//! Multi-threaded workload generators: per-core trace shards for the
//! [`califorms_sim::MulticoreEngine`].
//!
//! Where [`crate::generator`] models single SPEC-like programs, this
//! module models *sharing patterns* — the access shapes that exercise the
//! MESI-coherent califormed hierarchy (DESIGN.md §7):
//!
//! * [`MtPattern::ProducerConsumer`] — core pairs moving records through
//!   a shared ring (cache-to-cache M transfers in steady state);
//! * [`MtPattern::FalseSharing`] — all cores writing distinct bytes of
//!   the *same* lines (worst-case invalidation/upgrade ping-pong);
//! * [`MtPattern::LockContention`] — every core bouncing one lock line
//!   plus the table it protects;
//! * [`MtPattern::SharedTable`] — a read-mostly shared table with rare
//!   updates, modelling many concurrent users hitting one hot data set.
//!
//! With [`MtWorkloadConfig::califormed`] set, every shared record line
//! carries a 7-byte security span in its tail (the paper's maximum span
//! width), installed by `CFORM`s at the start of core 0's shard. Correct
//! shards never touch the spans — so legitimate multi-threaded runs stay
//! exception-free while every coherence transfer of those lines runs the
//! real bitvector↔sentinel conversions.

use califorms_sim::multicore::{MulticoreConfig, MulticoreEngine};
use califorms_sim::stats::MulticoreStats;
use califorms_sim::{HierarchyConfig, TraceOp, LINE_BYTES};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Base of the shared region all patterns allocate from.
const SHARED_BASE: u64 = 0x5000_0000;

/// Base of core `c`'s private region (16 MB apart — never shared).
fn private_base(core: usize) -> u64 {
    0x6000_0000 + core as u64 * 0x100_0000
}

/// Security span installed in each shared record line when
/// [`MtWorkloadConfig::califormed`] is set: bytes 56..=62, the paper's
/// maximum 7-byte span. Payload accesses stay within bytes 0..56.
pub const RECORD_SPAN_MASK: u64 = 0x7F << 56;

/// Bytes of a shared record line that legitimate accesses may touch when
/// the span is installed.
const PAYLOAD_BYTES: u64 = 56;

/// The sharing pattern of a multi-threaded workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MtPattern {
    /// Core pairs: even cores produce records into a per-pair ring, odd
    /// cores consume them.
    ProducerConsumer,
    /// All cores repeatedly write their own 8-byte slot of shared lines.
    FalseSharing,
    /// All cores acquire/release one lock line around accesses to the
    /// table it protects.
    LockContention,
    /// Read-mostly shared table (97 % loads) with rare updates — many
    /// concurrent users over one hot data set. The table spills the
    /// private L1s, so steady state exercises the shared levels.
    SharedTable,
    /// The same read-mostly shape over a table that **fits** in every
    /// private L1: after warm-up nearly every access is a clean Shared
    /// hit completed in the parallel bound phase — the best case for the
    /// persistent-worker runtime, and the `replay` bench's read-mostly
    /// scaling row.
    SharedTableHot,
}

impl MtPattern {
    /// All patterns, for sweeps.
    pub fn all() -> [MtPattern; 5] {
        [
            MtPattern::ProducerConsumer,
            MtPattern::FalseSharing,
            MtPattern::LockContention,
            MtPattern::SharedTable,
            MtPattern::SharedTableHot,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            MtPattern::ProducerConsumer => "producer-consumer",
            MtPattern::FalseSharing => "false-sharing",
            MtPattern::LockContention => "lock-contention",
            MtPattern::SharedTable => "shared-table",
            MtPattern::SharedTableHot => "shared-table-hot",
        }
    }
}

/// Parameters of a multi-threaded workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MtWorkloadConfig {
    /// Sharing pattern.
    pub pattern: MtPattern,
    /// Number of cores (= shards).
    pub cores: usize,
    /// Memory operations to generate per core.
    pub ops_per_core: usize,
    /// Seed for the per-core access streams.
    pub seed: u64,
    /// Whether shared record lines carry security spans (installed by
    /// `CFORM`s in core 0's shard).
    pub califormed: bool,
}

/// A generated multi-threaded workload, ready for
/// [`califorms_sim::MulticoreEngine::run`].
#[derive(Debug, Clone)]
pub struct MtWorkload {
    /// Pattern name.
    pub name: &'static str,
    /// One trace shard per core.
    pub shards: Vec<Vec<TraceOp>>,
    /// Memory-level parallelism for the core model.
    pub overlap: f64,
}

impl MtWorkload {
    /// Number of cores this workload was generated for.
    pub fn cores(&self) -> usize {
        self.shards.len()
    }

    /// Encodes each per-core shard into its own [`TracePack`] (shards are
    /// replayed independently per core, so they pack independently too).
    pub fn to_packs(&self) -> Vec<califorms_sim::TracePack> {
        self.shards
            .iter()
            .map(|s| califorms_sim::TracePack::from_ops(s.iter().copied()))
            .collect()
    }
}

fn rng_for(cfg: &MtWorkloadConfig, core: usize) -> SmallRng {
    SmallRng::seed_from_u64(
        cfg.seed ^ (core as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ cfg.pattern as u64,
    )
}

/// Emits the `CFORM`s that fence `lines` record lines starting at `base`
/// (one span per line).
fn caliform_region(ops: &mut Vec<TraceOp>, base: u64, lines: u64) {
    for i in 0..lines {
        ops.push(TraceOp::Cform {
            line_addr: base + i * LINE_BYTES,
            attrs: RECORD_SPAN_MASK,
            mask: RECORD_SPAN_MASK,
        });
    }
}

/// Random payload offset (8-byte aligned, never in the span).
fn payload_off(rng: &mut SmallRng) -> u64 {
    rng.gen_range(0..PAYLOAD_BYTES / 8) * 8
}

/// Generates the per-core shards for `cfg`.
pub fn generate_mt(cfg: &MtWorkloadConfig) -> MtWorkload {
    assert!(cfg.cores >= 1, "need at least one core");
    let shards = match cfg.pattern {
        MtPattern::ProducerConsumer => producer_consumer(cfg),
        MtPattern::FalseSharing => false_sharing(cfg),
        MtPattern::LockContention => lock_contention(cfg),
        MtPattern::SharedTable => shared_table(cfg, 2048), // 128 KB: spills the private L1s
        MtPattern::SharedTableHot => shared_table(cfg, 192), // 12 KB: L1-resident hot set
    };
    MtWorkload {
        name: cfg.pattern.name(),
        shards,
        overlap: 0.6,
    }
}

/// Producer/consumer ring: pair (2k, 2k+1) shares a 32-slot ring of
/// record lines plus a publish-flag line. A lone trailing core (odd core
/// count) produces and consumes its own ring.
fn producer_consumer(cfg: &MtWorkloadConfig) -> Vec<Vec<TraceOp>> {
    const RING_SLOTS: u64 = 32;
    // Ring + flag line, rounded to a line-aligned region per pair.
    const PAIR_BYTES: u64 = (RING_SLOTS + 1) * LINE_BYTES;
    let ring_base = |pair: u64| SHARED_BASE + pair * PAIR_BYTES;
    let flag_line = |pair: u64| ring_base(pair) + RING_SLOTS * LINE_BYTES;

    (0..cfg.cores)
        .map(|core| {
            let mut rng = rng_for(cfg, core);
            let pair = (core / 2) as u64;
            let lone = core + 1 == cfg.cores && cfg.cores % 2 == 1;
            let producing = core % 2 == 0;
            let mut ops = Vec::with_capacity(cfg.ops_per_core * 2);
            if cfg.califormed && (producing || lone) {
                caliform_region(&mut ops, ring_base(pair), RING_SLOTS);
            }
            let mut emitted = 0usize;
            let mut slot = 0u64;
            while emitted < cfg.ops_per_core {
                let line = ring_base(pair) + slot * LINE_BYTES;
                ops.push(TraceOp::Exec(rng.gen_range(4..12)));
                let produce_now = producing || (lone && slot.is_multiple_of(2));
                if produce_now {
                    // Fill the record's payload, then publish.
                    for off in (0..PAYLOAD_BYTES).step_by(8).take(4) {
                        ops.push(TraceOp::Store {
                            addr: line + off,
                            size: 8,
                        });
                        emitted += 1;
                    }
                    ops.push(TraceOp::Store {
                        addr: flag_line(pair),
                        size: 8,
                    });
                    emitted += 1;
                } else {
                    // Poll the flag, then read the record.
                    ops.push(TraceOp::Load {
                        addr: flag_line(pair),
                        size: 8,
                    });
                    emitted += 1;
                    for off in (0..PAYLOAD_BYTES).step_by(8).take(4) {
                        ops.push(TraceOp::Load {
                            addr: line + off,
                            size: 8,
                        });
                        emitted += 1;
                    }
                }
                slot = (slot + 1) % RING_SLOTS;
            }
            ops
        })
        .collect()
}

/// False sharing: every core hammers its own 8-byte slot, but slots are
/// packed several to a line, so each store invalidates the others' copies.
fn false_sharing(cfg: &MtWorkloadConfig) -> Vec<Vec<TraceOp>> {
    // With spans installed, only the 56-byte payload holds slots.
    let slots_per_line: usize = if cfg.califormed { 6 } else { 8 };
    (0..cfg.cores)
        .map(|core| {
            let mut rng = rng_for(cfg, core);
            let line = SHARED_BASE + (core / slots_per_line) as u64 * LINE_BYTES;
            let slot = line + (core % slots_per_line) as u64 * 8;
            let mut ops = Vec::with_capacity(cfg.ops_per_core * 2);
            if cfg.califormed && core % slots_per_line == 0 {
                caliform_region(&mut ops, line, 1);
            }
            let mut emitted = 0usize;
            while emitted < cfg.ops_per_core {
                ops.push(TraceOp::Exec(rng.gen_range(2..8)));
                ops.push(TraceOp::Store {
                    addr: slot,
                    size: 8,
                });
                ops.push(TraceOp::Load {
                    addr: slot,
                    size: 8,
                });
                emitted += 2;
            }
            ops
        })
        .collect()
}

/// Lock contention: one lock line, acquired (load + store) around a
/// 4-access critical section over the 8-line table it protects.
fn lock_contention(cfg: &MtWorkloadConfig) -> Vec<Vec<TraceOp>> {
    const TABLE_LINES: u64 = 8;
    let lock = SHARED_BASE;
    let table = SHARED_BASE + LINE_BYTES;
    (0..cfg.cores)
        .map(|core| {
            let mut rng = rng_for(cfg, core);
            let mut ops = Vec::with_capacity(cfg.ops_per_core * 2);
            if cfg.califormed && core == 0 {
                caliform_region(&mut ops, table, TABLE_LINES);
            }
            let mut emitted = 0usize;
            while emitted < cfg.ops_per_core {
                ops.push(TraceOp::Load {
                    addr: lock,
                    size: 8,
                }); // test
                ops.push(TraceOp::Store {
                    addr: lock,
                    size: 8,
                }); // acquire
                emitted += 2;
                for _ in 0..4 {
                    let addr =
                        table + rng.gen_range(0..TABLE_LINES) * LINE_BYTES + payload_off(&mut rng);
                    if rng.gen_range(0..4) == 0 {
                        ops.push(TraceOp::Store { addr, size: 8 });
                    } else {
                        ops.push(TraceOp::Load { addr, size: 8 });
                    }
                    emitted += 1;
                }
                ops.push(TraceOp::Store {
                    addr: lock,
                    size: 8,
                }); // release
                emitted += 1;
                ops.push(TraceOp::Exec(rng.gen_range(10..30))); // outside work
            }
            ops
        })
        .collect()
}

/// Read-mostly shared table: 97 % loads of a hot shared table, 1 % table
/// updates, 2 % private stores — the "millions of concurrent users over
/// one data set" shape the ROADMAP asks for. Scales almost linearly in
/// the parallel phase because nearly every access is a clean Shared hit;
/// `table_lines` decides whether the hot set lives in the private L1s
/// ([`MtPattern::SharedTableHot`]) or thrashes them into the shared
/// levels ([`MtPattern::SharedTable`]).
fn shared_table(cfg: &MtWorkloadConfig, table_lines: u64) -> Vec<Vec<TraceOp>> {
    (0..cfg.cores)
        .map(|core| {
            let mut rng = rng_for(cfg, core);
            let mut ops = Vec::with_capacity(cfg.ops_per_core * 2);
            if cfg.califormed && core == 0 {
                caliform_region(&mut ops, SHARED_BASE, table_lines);
            }
            let priv_base = private_base(core);
            let mut emitted = 0usize;
            while emitted < cfg.ops_per_core {
                ops.push(TraceOp::Exec(rng.gen_range(4..16)));
                let roll = rng.gen_range(0..100);
                let table_addr = SHARED_BASE
                    + rng.gen_range(0..table_lines) * LINE_BYTES
                    + payload_off(&mut rng);
                if roll < 97 {
                    ops.push(TraceOp::Load {
                        addr: table_addr,
                        size: 8,
                    });
                } else if roll < 98 {
                    ops.push(TraceOp::Store {
                        addr: table_addr,
                        size: 8,
                    });
                } else {
                    let addr = priv_base + rng.gen_range(0..4096u64) * 8;
                    ops.push(TraceOp::Store { addr, size: 8 });
                }
                emitted += 1;
            }
            ops
        })
        .collect()
}

/// The engine configuration [`run_mt`] applies to a workload: the
/// Table 3 machine with the workload's memory-level parallelism.
pub fn mt_config(workload: &MtWorkload, hcfg: HierarchyConfig) -> MulticoreConfig {
    MulticoreConfig {
        hierarchy: hcfg,
        ..MulticoreConfig::westmere(workload.cores())
    }
    .with_overlap(workload.overlap)
}

/// Runs a multi-threaded workload under an explicit engine configuration
/// and returns the full outcome (stats, exceptions, per-phase host
/// timing) — the driver the scaling bench uses so quantum and runtime
/// overrides reach the engine.
pub fn run_mt_outcome(
    workload: &MtWorkload,
    cfg: MulticoreConfig,
) -> califorms_sim::MulticoreOutcome {
    MulticoreEngine::new(cfg).run(workload.shards.clone())
}

/// Runs a multi-threaded workload and returns its statistics — the
/// common driver the scaling bench and tests share.
pub fn run_mt(workload: &MtWorkload, hcfg: HierarchyConfig) -> MulticoreStats {
    run_mt_outcome(workload, mt_config(workload, hcfg)).stats
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(pattern: MtPattern, cores: usize) -> MtWorkloadConfig {
        MtWorkloadConfig {
            pattern,
            cores,
            ops_per_core: 2_000,
            seed: 42,
            califormed: true,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_mt(&cfg(MtPattern::SharedTable, 4));
        let b = generate_mt(&cfg(MtPattern::SharedTable, 4));
        assert_eq!(a.shards, b.shards);
        let c = generate_mt(&MtWorkloadConfig {
            seed: 43,
            ..cfg(MtPattern::SharedTable, 4)
        });
        assert_ne!(a.shards, c.shards, "different seeds differ");
    }

    #[test]
    fn every_pattern_runs_clean_and_counts_coherence() {
        for pattern in MtPattern::all() {
            let w = generate_mt(&cfg(pattern, 4));
            assert_eq!(w.cores(), 4);
            let stats = run_mt(&w, HierarchyConfig::westmere());
            assert_eq!(
                stats.combined.exceptions_delivered, 0,
                "{}: legitimate threads never fault",
                w.name
            );
            assert!(
                stats.combined.coherence.cache_to_cache_transfers > 0,
                "{}: sharing must move lines core-to-core",
                w.name
            );
            assert!(
                stats.combined.coherence.califormed_transfers > 0,
                "{}: califormed lines must ride those transfers",
                w.name
            );
            assert_eq!(stats.cores(), 4);
        }
    }

    #[test]
    fn false_sharing_is_the_invalidation_champion() {
        let mk = |p| {
            let w = generate_mt(&cfg(p, 4));
            run_mt(&w, HierarchyConfig::westmere())
                .combined
                .coherence
                .invalidations
        };
        let fs = mk(MtPattern::FalseSharing);
        let st = mk(MtPattern::SharedTable);
        assert!(
            fs > st * 2,
            "false sharing ({fs}) must invalidate far more than a read-mostly table ({st})"
        );
    }

    #[test]
    fn lock_contention_upgrades_shared_lines() {
        let w = generate_mt(&cfg(MtPattern::LockContention, 4));
        let stats = run_mt(&w, HierarchyConfig::westmere());
        assert!(stats.combined.coherence.upgrades_s_to_m > 0);
    }

    #[test]
    fn uncaliformed_variant_emits_no_cforms() {
        let w = generate_mt(&MtWorkloadConfig {
            califormed: false,
            ..cfg(MtPattern::ProducerConsumer, 4)
        });
        for shard in &w.shards {
            assert!(shard.iter().all(|op| !matches!(op, TraceOp::Cform { .. })));
        }
        let stats = run_mt(&w, HierarchyConfig::westmere());
        assert_eq!(stats.combined.cforms, 0);
        assert_eq!(stats.combined.coherence.califormed_transfers, 0);
    }
}
