//! Turns a benchmark profile into a deterministic trace.
//!
//! A generated workload has two phases:
//!
//! 1. **Warmup** — the live object population is allocated through
//!    [`CaliformsHeap`], which emits the `CFORM`s the instrumented
//!    `malloc` would issue (plus its bookkeeping instructions).
//! 2. **Steady state** — `steady_ops` memory operations drawn from the
//!    profile's access mix (field accesses, array streams, pointer chases)
//!    interleaved with allocation churn and the profile's compute
//!    instructions.
//!
//! The *same* `(profile, seed, steady_ops)` triple generates the same
//! logical work under every insertion policy; only the object layouts —
//! and therefore addresses, cache behaviour and allocator-emitted ops —
//! differ. Slowdowns between two runs thus isolate exactly the effects the
//! paper measures: cache underutilisation from security bytes, and the
//! work of issuing `CFORM`s.

use crate::spec::BenchmarkProfile;
use califorms_alloc::{AllocatorConfig, CaliformsHeap};
use califorms_layout::{CaliformedLayout, InsertionPolicy};
use califorms_sim::TraceOp;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Workload generation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadConfig {
    /// Security-byte insertion policy applied to the benchmark's types.
    pub policy: InsertionPolicy,
    /// Whether the allocator issues `CFORM`s (the ±CFORM series of
    /// Figures 11/12).
    pub emit_cforms: bool,
    /// Steady-state memory operations to generate.
    pub steady_ops: usize,
    /// Seed for both the compiler's span randomisation and the access
    /// stream.
    pub seed: u64,
}

impl WorkloadConfig {
    /// Baseline: natural layout, no security bytes, no `CFORM`s.
    pub fn baseline(steady_ops: usize, seed: u64) -> Self {
        Self {
            policy: InsertionPolicy::None,
            emit_cforms: false,
            steady_ops,
            seed,
        }
    }

    /// A policy run with `CFORM`s on.
    pub fn with_policy(policy: InsertionPolicy, steady_ops: usize, seed: u64) -> Self {
        Self {
            policy,
            emit_cforms: true,
            steady_ops,
            seed,
        }
    }

    /// A policy run with `CFORM`s off (cache-underutilisation reference).
    pub fn without_cforms(policy: InsertionPolicy, steady_ops: usize, seed: u64) -> Self {
        Self {
            policy,
            emit_cforms: false,
            steady_ops,
            seed,
        }
    }
}

/// A generated workload, ready to run through [`califorms_sim::Engine`].
#[derive(Debug, Clone)]
pub struct Workload {
    /// Benchmark name.
    pub name: String,
    /// The trace. The first [`Self::warmup_len`] operations build the
    /// live-object population; measurement starts after them (the paper
    /// measures SimPoint steady-state regions, not program startup).
    pub ops: Vec<TraceOp>,
    /// Number of leading warmup operations.
    pub warmup_len: usize,
    /// The profile's memory-level-parallelism for
    /// [`califorms_sim::CoreConfig::with_overlap`].
    pub overlap: f64,
    /// Califormed object size (bytes).
    pub object_size: usize,
    /// Natural object size (bytes).
    pub natural_object_size: usize,
    /// Security bytes per object.
    pub security_bytes_per_object: usize,
}

impl Workload {
    /// Encodes the whole trace (warmup + steady state) into a
    /// [`TracePack`] for the batch-decoding replay path
    /// ([`califorms_sim::Engine::run_pack`]).
    pub fn to_pack(&self) -> califorms_sim::TracePack {
        califorms_sim::TracePack::from_ops(self.ops.iter().copied())
    }

    /// Encodes only the steady-state region (after
    /// [`Self::warmup_len`]) — the part the paper measures.
    pub fn steady_pack(&self) -> califorms_sim::TracePack {
        califorms_sim::TracePack::from_ops(self.ops[self.warmup_len..].iter().copied())
    }
}

struct FieldSlot {
    offset: usize,
    size: usize,
}

/// Generates the trace for `profile` under `cfg`.
pub fn generate(profile: &BenchmarkProfile, cfg: &WorkloadConfig) -> Workload {
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ hash_name(profile.name));
    let defs = profile.struct_defs();
    let layouts: Vec<CaliformedLayout> = defs
        .iter()
        .map(|(def, _)| cfg.policy.apply(def, &mut rng))
        .collect();

    let heap_cfg = AllocatorConfig {
        emit_cforms: cfg.emit_cforms,
        // The paper's measured instrumentation: dummy stores per
        // to-be-califormed line, span lines only (Section 8.2); the
        // address/mask computation is a handful of instructions per line
        // (type layout is known statically at each call site).
        free_mode: califorms_alloc::FreeMode::SpanOnly,
        cform_setup_insns: 8,
        instrumented_call_insns: 64,
        ..AllocatorConfig::default()
    };
    let mut heap = CaliformsHeap::new(0x1000_0000, heap_cfg);
    let mut ops: Vec<TraceOp> = Vec::with_capacity(cfg.steady_ops * 2 + profile.live_objects * 2);

    // --- Warmup: build the live population (weighted type mix). ---
    let total_weight: u32 = defs.iter().map(|(_, w)| w).sum();
    let type_of = |i: usize| -> usize {
        // Deterministic round-robin honouring the weights.
        let slot = (i as u32) % total_weight;
        let mut acc = 0;
        for (t, (_, w)) in defs.iter().enumerate() {
            acc += w;
            if slot < acc {
                return t;
            }
        }
        unreachable!("weights cover the range")
    };
    let mut objects: Vec<(u64, usize)> = (0..profile.live_objects)
        .map(|i| {
            let t = type_of(i);
            let base = heap.malloc(&layouts[t], &mut ops);
            // Programs initialise what they allocate (constructor /
            // memset): one store per field, sweeping arrays line by line.
            // This also equalises cache warmth across configurations —
            // without it the CFORM variant's write-allocate fetches would
            // pre-warm its caches and bias the steady-state comparison.
            for f in &layouts[t].fields {
                if f.size > 8 {
                    let mut off = 0;
                    while off < f.size {
                        ops.push(TraceOp::Store {
                            addr: base + (f.offset + off) as u64,
                            size: 8.min(f.size - off) as u8,
                        });
                        off += 64;
                    }
                } else {
                    ops.push(TraceOp::Store {
                        addr: base + f.offset as u64,
                        size: f.size as u8,
                    });
                }
            }
            (base, t)
        })
        .collect();
    let warmup_len = ops.len();

    // Accessible field slots per type (never the security bytes — a
    // correct program only touches its fields).
    let slots: Vec<Vec<FieldSlot>> = layouts
        .iter()
        .map(|l| {
            l.fields
                .iter()
                .map(|f| FieldSlot {
                    offset: f.offset,
                    size: f.size.min(8),
                })
                .collect()
        })
        .collect();
    let arrays: Vec<Option<FieldSlot>> = layouts
        .iter()
        .map(|l| {
            l.fields
                .iter()
                .find(|f| f.name == "buf")
                .map(|f| FieldSlot {
                    offset: f.offset,
                    size: f.size,
                })
        })
        .collect();
    // Chase pointers live in node objects (type 0): their `next` field.
    let next_slot = layouts[0]
        .field_offset("next")
        .expect("node type has a next pointer");
    let node_objects: Vec<usize> = (0..objects.len()).filter(|&i| type_of(i) == 0).collect();
    let record_objects: Vec<usize> = (0..objects.len()).filter(|&i| type_of(i) == 1).collect();

    // Stack frames: dirty-before-use — spans set on entry, unset on exit
    // (Section 6.1). Only frames whose locals carry spans are
    // instrumented; the fixed hook cost matches the heap's.
    let frame_layout = cfg.policy.apply(&profile.frame_def(), &mut rng);
    let mut stack = califorms_alloc::CaliformsStack::new(0x7FFF_FF00_0000 & !63);
    stack.emit_cforms = cfg.emit_cforms;
    stack.cform_setup_insns = 8;
    let frame_hook = if cfg.emit_cforms && !frame_layout.security_spans.is_empty() {
        64
    } else {
        0
    };
    let frame_slots: Vec<FieldSlot> = frame_layout
        .fields
        .iter()
        .map(|f| FieldSlot {
            offset: f.offset,
            size: f.size.min(8),
        })
        .collect();

    // Non-struct global data (big arrays, tables): its layout is identical
    // under every policy, diluting the padding effect exactly as real
    // programs do.
    let global_base = 0x8000_0000u64;
    let global_bytes = (profile.natural_wss() as u64).max(64 * 1024);
    let mut global_cursor = 0u64;

    // --- Steady state. ---
    let mut emitted = 0usize;
    let mut chase_cursor = 0usize;
    while emitted < cfg.steady_ops {
        ops.push(TraceOp::Exec(jitter(&mut rng, profile.exec_per_mem)));

        // Global (policy-independent) accesses: mostly sequential sweeps
        // with occasional random hops.
        if rng.gen_range(0..100) < profile.global_pct {
            let addr = if rng.gen_range(0..4) == 0 {
                global_base + rng.gen_range(0..global_bytes / 8) * 8
            } else {
                global_cursor = (global_cursor + 8) % global_bytes;
                global_base + global_cursor
            };
            ops.push(TraceOp::Load { addr, size: 8 });
            emitted += 1;
            continue;
        }

        // Function-call events: push a frame, touch its locals, pop.
        if rng.gen_range(0..1000) < profile.calls_per_kop {
            if frame_hook > 0 {
                ops.push(TraceOp::Exec(frame_hook));
            }
            let fbase = stack.push_frame(&frame_layout, &mut ops);
            for s in frame_slots.iter().take(3) {
                ops.push(TraceOp::Store {
                    addr: fbase + s.offset as u64,
                    size: s.size as u8,
                });
                emitted += 1;
            }
            if frame_hook > 0 {
                ops.push(TraceOp::Exec(frame_hook));
            }
            stack.pop_frame(&mut ops);
            continue;
        }

        // Allocation churn. Hot churn is dominated by the small scalar
        // *record* type (interpreters and tree searches recycle cons
        // cells and board nodes, not buffer-bearing structs) — this is
        // what makes the intelligent policy's CFORM bill so much smaller
        // than the opportunistic one's in Figure 12: records carry no
        // arrays or pointers, so intelligent instrumentation skips them.
        if rng.gen_range(0..1000) < profile.churn_per_kop {
            let slot = if rng.gen_range(0..10) < 9 && !record_objects.is_empty() {
                record_objects[rng.gen_range(0..record_objects.len())]
            } else {
                rng.gen_range(0..objects.len())
            };
            let (base, t) = objects[slot];
            heap.free(base, &mut ops);
            objects[slot] = (heap.malloc(&layouts[t], &mut ops), t);
            emitted += 1;
            continue;
        }

        let roll = rng.gen_range(0..100);
        if roll < profile.chase_pct {
            // Dependent pointer chase over node objects: deterministic
            // permutation walk through their `next` fields.
            chase_cursor = (chase_cursor
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1))
                % node_objects.len();
            let (base, _) = objects[node_objects[chase_cursor]];
            ops.push(TraceOp::Load {
                addr: base + next_slot as u64,
                size: 8,
            });
            emitted += 1;
        } else if roll < profile.chase_pct + profile.stream_pct {
            // Stream sequentially over an array-bearing object (or the
            // whole object when the type has no array).
            let (base, t) = objects[rng.gen_range(0..objects.len())];
            match &arrays[t] {
                Some(a) => {
                    let mut off = a.offset;
                    while off + 8 <= a.offset + a.size && emitted < cfg.steady_ops {
                        ops.push(TraceOp::Load {
                            addr: base + off as u64,
                            size: 8,
                        });
                        off += 8;
                        emitted += 1;
                    }
                }
                None => {
                    for s in &slots[t] {
                        if emitted >= cfg.steady_ops {
                            break;
                        }
                        ops.push(TraceOp::Load {
                            addr: base + s.offset as u64,
                            size: s.size as u8,
                        });
                        emitted += 1;
                    }
                }
            }
        } else {
            // Random field access, 70 % loads / 30 % stores.
            let (base, t) = objects[rng.gen_range(0..objects.len())];
            let s = &slots[t][rng.gen_range(0..slots[t].len())];
            let op = if rng.gen_range(0..10) < 7 {
                TraceOp::Load {
                    addr: base + s.offset as u64,
                    size: s.size as u8,
                }
            } else {
                TraceOp::Store {
                    addr: base + s.offset as u64,
                    size: s.size as u8,
                }
            };
            ops.push(op);
            emitted += 1;
        }
    }

    let total_weight_us = total_weight as usize;
    let avg = |f: &dyn Fn(&CaliformedLayout) -> usize| -> usize {
        defs.iter()
            .zip(&layouts)
            .map(|((_, w), l)| f(l) * *w as usize)
            .sum::<usize>()
            / total_weight_us
    };
    Workload {
        name: profile.name.to_string(),
        ops,
        warmup_len,
        overlap: profile.overlap,
        object_size: avg(&|l| l.size),
        natural_object_size: avg(&|l| l.natural_size),
        security_bytes_per_object: avg(&|l| l.security_bytes()),
    }
}

/// Runs a workload and returns its statistics — the common driver the
/// benches and tests share.
pub fn run_workload(
    workload: &Workload,
    hcfg: califorms_sim::HierarchyConfig,
) -> califorms_sim::SimStats {
    let core = califorms_sim::CoreConfig::westmere().with_overlap(workload.overlap);
    let mut engine = califorms_sim::Engine::new(hcfg, core);
    for op in &workload.ops[..workload.warmup_len] {
        engine.step(*op);
    }
    let warmup_cycles = engine.cycles();
    for op in &workload.ops[workload.warmup_len..] {
        engine.step(*op);
    }
    let mut stats = engine.finish().stats;
    // Report steady-state cycles only (SimPoint-style region measurement).
    stats.cycles -= warmup_cycles;
    stats
}

fn jitter<R: Rng + ?Sized>(rng: &mut R, around: u32) -> u32 {
    if around == 0 {
        return 0;
    }
    let lo = (around * 3) / 4;
    let hi = (around * 5) / 4;
    rng.gen_range(lo..=hi.max(lo + 1))
}

fn hash_name(name: &str) -> u64 {
    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
    })
}

/// Convenience: a layout for a profile under a policy, with the same
/// seeding as [`generate`] (used by attack experiments that need to know
/// where spans landed).
pub fn layout_for(
    profile: &BenchmarkProfile,
    policy: InsertionPolicy,
    seed: u64,
) -> CaliformedLayout {
    let mut rng = SmallRng::seed_from_u64(seed ^ hash_name(profile.name));
    policy.apply(&profile.struct_def(), &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::by_name;
    use califorms_sim::HierarchyConfig;

    fn quick(name: &str, cfg: WorkloadConfig) -> Workload {
        generate(&by_name(name).unwrap(), &cfg)
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = WorkloadConfig::baseline(5_000, 7);
        let a = quick("sjeng", cfg);
        let b = quick("sjeng", cfg);
        assert_eq!(a.ops, b.ops);
        let c = quick("sjeng", WorkloadConfig::baseline(5_000, 8));
        assert_ne!(a.ops, c.ops, "different seeds differ");
    }

    #[test]
    fn baseline_emits_no_cforms_and_no_exceptions() {
        let w = quick("gobmk", WorkloadConfig::baseline(5_000, 1));
        assert!(w.ops.iter().all(|op| !matches!(op, TraceOp::Cform { .. })));
        let stats = run_workload(&w, HierarchyConfig::westmere());
        assert_eq!(stats.exceptions_delivered, 0);
        assert_eq!(stats.cforms, 0);
    }

    #[test]
    fn policy_run_emits_cforms_but_no_exceptions() {
        // A *correct* program never touches its security bytes: the whole
        // point of the evaluation is that overhead comes without faults.
        let cfg = WorkloadConfig::with_policy(InsertionPolicy::full_1_to(7), 5_000, 1);
        let w = quick("perlbench", cfg);
        assert!(w.ops.iter().any(|op| matches!(op, TraceOp::Cform { .. })));
        let stats = run_workload(&w, HierarchyConfig::westmere());
        assert_eq!(
            stats.exceptions_delivered, 0,
            "legitimate accesses must never fault"
        );
        assert!(stats.cforms > 0);
        assert!(w.security_bytes_per_object > 0);
        assert!(w.object_size > w.natural_object_size);
    }

    #[test]
    fn opportunistic_does_not_grow_objects() {
        let cfg = WorkloadConfig::with_policy(InsertionPolicy::Opportunistic, 2_000, 3);
        let w = quick("astar", cfg);
        assert_eq!(w.object_size, w.natural_object_size);
        let stats = run_workload(&w, HierarchyConfig::westmere());
        assert_eq!(stats.exceptions_delivered, 0);
    }

    #[test]
    fn padding_costs_cycles_on_cache_hungry_benchmarks() {
        let steady = 30_000;
        let base = quick("mcf", WorkloadConfig::baseline(steady, 2));
        let padded = quick(
            "mcf",
            WorkloadConfig::without_cforms(InsertionPolicy::FixedPad(7), steady, 2),
        );
        let sb = run_workload(&base, HierarchyConfig::westmere());
        let sp = run_workload(&padded, HierarchyConfig::westmere());
        assert!(
            sp.cycles > sb.cycles,
            "7 B padding must slow a cache-hungry benchmark"
        );
    }

    #[test]
    fn compute_bound_benchmark_barely_notices_latency() {
        let steady = 20_000;
        let w = quick("hmmer", WorkloadConfig::baseline(steady, 4));
        let a = run_workload(&w, HierarchyConfig::westmere());
        let b = run_workload(&w, HierarchyConfig::westmere_plus_one_cycle());
        let slowdown = b.slowdown_vs(&a);
        assert!(
            (0.0..0.02).contains(&slowdown),
            "hmmer: +1 cycle should cost <2 %, got {slowdown:.4}"
        );
    }

    #[test]
    fn all_profiles_generate_and_run_clean() {
        for b in crate::spec::all_benchmarks() {
            let cfg = WorkloadConfig::with_policy(InsertionPolicy::intelligent_1_to(7), 800, 5);
            let w = generate(&b, &cfg);
            let stats = run_workload(&w, HierarchyConfig::westmere());
            assert_eq!(
                stats.exceptions_delivered, 0,
                "{}: legit run must be clean",
                b.name
            );
            assert!(stats.instructions > 0);
        }
    }
}
