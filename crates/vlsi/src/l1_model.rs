//! Structural models of the baseline L1 and the three Califorms L1
//! variants (Section 8.1, Appendix A).

use crate::gates::{Cost, Tech};

/// Which L1 design is being modelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L1Variant {
    /// Unmodified 32 KB L1 (Table 2's baseline row).
    Baseline,
    /// Califorms-bitvector with an 8 B metadata array per line
    /// (Section 5.1): metadata looked up in parallel with the tag.
    Bitvector8B,
    /// Appendix A califorms-4B: bit vector inside a security byte, located
    /// through 4-bit chunk metadata — an extra serial indirection.
    Bitvector4B,
    /// Appendix A califorms-1B: bit vector in the chunk's fixed header
    /// byte — a shorter serial indirection.
    Bitvector1B,
}

impl L1Variant {
    /// All four rows of Table 7, in the paper's order.
    pub const ALL: [L1Variant; 4] = [
        L1Variant::Baseline,
        L1Variant::Bitvector8B,
        L1Variant::Bitvector4B,
        L1Variant::Bitvector1B,
    ];

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            L1Variant::Baseline => "Baseline",
            L1Variant::Bitvector8B => "Califorms-8B",
            L1Variant::Bitvector4B => "Califorms-4B",
            L1Variant::Bitvector1B => "Califorms-1B",
        }
    }

    /// Additional metadata bits per 64 B line.
    pub fn metadata_bits_per_line(self) -> usize {
        match self {
            L1Variant::Baseline => 0,
            L1Variant::Bitvector8B => 64,
            L1Variant::Bitvector4B => 32,
            L1Variant::Bitvector1B => 8,
        }
    }
}

/// A modelled L1 design.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct L1Design {
    /// Which variant.
    pub variant: L1Variant,
    /// The modelled main-synthesis cost (Table 2 "Main synthesis results").
    pub cost: Cost,
}

/// Geometry of the evaluated cache (paper: 32 KB direct-mapped L1 in a
/// typical energy-optimised tag→data→format pipeline).
const CACHE_BYTES: usize = 32 * 1024;
const LINE_BYTES: usize = 64;
const LINES: usize = CACHE_BYTES / LINE_BYTES;
/// Tag + valid + dirty bits per line (46-bit PA, direct-mapped).
const TAG_BITS: usize = 25;

impl L1Design {
    /// Models a variant in a given technology.
    pub fn model(variant: L1Variant, tech: &Tech) -> Self {
        let data = tech.sram(CACHE_BYTES * 8);
        let tag = tech.sram(LINES * TAG_BITS);
        // Hit path: tag/data in parallel, then hit logic and the output
        // aligner (Figure 6's unshaded pipeline).
        let base = data.parallel(tag) + tech.logic(2_000, 6);

        let cost = match variant {
            L1Variant::Baseline => base,
            L1Variant::Bitvector8B => {
                // Metadata array is looked up in parallel with the tag; the
                // Califorms checker adds one mux/check stage to the hit
                // path (the paper's +1.85 % delay).
                let meta = tech.sram(LINES * 64);
                let checker = tech.logic(900, 1);
                base.parallel(meta) + checker
            }
            L1Variant::Bitvector4B => {
                // Serial indirection: read the 4-bit chunk metadata, mux
                // the holder byte out of the chunk (8:1), then select the
                // bit — all *after* the data array (the paper's +49 %).
                let meta = tech.sram(LINES * 32);
                let holder_mux = tech.byte_mux(8);
                let indirection = tech.logic(1_200, 14);
                base.parallel(meta) + holder_mux + indirection
            }
            L1Variant::Bitvector1B => {
                // Fixed header byte: no holder mux, a shorter select path
                // (the paper's +22 %).
                let meta = tech.sram(LINES * 8);
                let select = tech.logic(700, 7);
                base.parallel(meta) + select
            }
        };
        Self { variant, cost }
    }

    /// Overhead triple (% area, % delay, % power) versus a baseline design.
    pub fn overhead_vs(&self, baseline: &L1Design) -> (f64, f64, f64) {
        let pct = |a: f64, b: f64| (a / b - 1.0) * 100.0;
        (
            pct(self.cost.area_ge, baseline.cost.area_ge),
            pct(self.cost.delay_ns, baseline.cost.delay_ns),
            pct(self.cost.power_mw, baseline.cost.power_mw),
        )
    }

    /// Metadata storage overhead as a percent of the data array (the
    /// paper's 12.5 % / 6.25 % / 1.56 %).
    pub fn metadata_storage_percent(&self) -> f64 {
        self.variant.metadata_bits_per_line() as f64 / (LINE_BYTES * 8) as f64 * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn models() -> [L1Design; 4] {
        let t = Tech::tsmc65();
        L1Variant::ALL.map(|v| L1Design::model(v, &t))
    }

    #[test]
    fn delay_ordering_matches_table7() {
        let [base, v8, v4, v1] = models();
        assert!(base.cost.delay_ns < v8.cost.delay_ns);
        assert!(v8.cost.delay_ns < v1.cost.delay_ns);
        assert!(v1.cost.delay_ns < v4.cost.delay_ns);
    }

    #[test]
    fn area_ordering_matches_table7() {
        // Metadata bits dominate the area delta: 8B > 4B > 1B > baseline.
        let [base, v8, v4, v1] = models();
        assert!(v8.cost.area_ge > v4.cost.area_ge);
        assert!(v4.cost.area_ge > v1.cost.area_ge);
        assert!(v1.cost.area_ge > base.cost.area_ge);
    }

    #[test]
    fn storage_percentages_are_exact() {
        let [base, v8, v4, v1] = models();
        assert_eq!(base.metadata_storage_percent(), 0.0);
        assert_eq!(v8.metadata_storage_percent(), 12.5);
        assert_eq!(v4.metadata_storage_percent(), 6.25);
        assert!((v1.metadata_storage_percent() - 1.5625).abs() < 1e-12);
    }

    #[test]
    fn headline_overheads_near_paper() {
        let [base, v8, v4, v1] = models();
        let (_, d8, _) = v8.overhead_vs(&base);
        let (_, d4, _) = v4.overhead_vs(&base);
        let (_, d1, _) = v1.overhead_vs(&base);
        // Paper: +1.85 %, +49.4 %, +22.2 %. Allow generous tolerance; the
        // orderings above are the strict requirement.
        assert!((0.5..6.0).contains(&d8), "8B delay overhead {d8:.2}%");
        assert!((35.0..65.0).contains(&d4), "4B delay overhead {d4:.2}%");
        assert!((14.0..32.0).contains(&d1), "1B delay overhead {d1:.2}%");
    }

    #[test]
    fn area_overhead_of_8b_near_paper() {
        let [base, v8, ..] = models();
        let (a8, _, _) = v8.overhead_vs(&base);
        // Paper: 18.69 %. The SRAM-dominated model should land within a
        // third of that.
        assert!((12.0..25.0).contains(&a8), "8B area overhead {a8:.2}%");
    }
}
