//! Technology constants and cost algebra for the analytic VLSI model.

use core::ops::Add;

/// An area/delay/power triple.
///
/// `+` composes blocks **in series** (areas and powers add, delays add);
/// [`Cost::parallel`] composes blocks side by side (areas and powers add,
/// delay is the max).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Cost {
    /// Area in gate equivalents (NAND2-equivalents).
    pub area_ge: f64,
    /// Critical-path delay in nanoseconds.
    pub delay_ns: f64,
    /// Power in milliwatts (at the calibration frequency).
    pub power_mw: f64,
}

impl Cost {
    /// A zero-cost block.
    pub const ZERO: Cost = Cost {
        area_ge: 0.0,
        delay_ns: 0.0,
        power_mw: 0.0,
    };

    /// Parallel composition: delay is the slower of the two.
    pub fn parallel(self, other: Cost) -> Cost {
        Cost {
            area_ge: self.area_ge + other.area_ge,
            delay_ns: self.delay_ns.max(other.delay_ns),
            power_mw: self.power_mw + other.power_mw,
        }
    }

    /// Adds area/power of `other` but ignores its delay (off the critical
    /// path).
    pub fn with_off_path(self, other: Cost) -> Cost {
        Cost {
            area_ge: self.area_ge + other.area_ge,
            delay_ns: self.delay_ns,
            power_mw: self.power_mw + other.power_mw,
        }
    }
}

impl Add for Cost {
    type Output = Cost;
    fn add(self, other: Cost) -> Cost {
        Cost {
            area_ge: self.area_ge + other.area_ge,
            delay_ns: self.delay_ns + other.delay_ns,
            power_mw: self.power_mw + other.power_mw,
        }
    }
}

/// 65 nm-class technology constants, calibrated so the baseline 32 KB L1
/// lands on the paper's Table 2 row (347 k GE, 1.62 ns, 15.84 mW).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tech {
    /// SRAM storage cost per bit, in GE (cell + amortised periphery of a
    /// large macro).
    pub sram_ge_per_bit: f64,
    /// Fixed periphery per SRAM macro (decoders, sense amps), in GE.
    pub sram_macro_overhead_ge: f64,
    /// Delay of one gate level (FO4-ish), ns.
    pub gate_delay_ns: f64,
    /// Area of one simple gate (NAND/NOR/AND), GE.
    pub gate_area_ge: f64,
    /// Dynamic + leakage power per GE at the calibration frequency, mW.
    pub power_per_ge_mw: f64,
    /// SRAM random-access delay for a macro of `bits`, modelled as
    /// `a + b·log2(bits)` — `a` (ns).
    pub sram_delay_base_ns: f64,
    /// The `b` coefficient (ns per doubling).
    pub sram_delay_per_log2_ns: f64,
}

impl Tech {
    /// The calibrated 65 nm TSMC-like corner.
    pub fn tsmc65() -> Self {
        Self {
            sram_ge_per_bit: 1.245,
            sram_macro_overhead_ge: 6_000.0,
            gate_delay_ns: 0.045,
            gate_area_ge: 1.6,
            power_per_ge_mw: 4.35e-5,
            sram_delay_base_ns: 0.30,
            sram_delay_per_log2_ns: 0.0585,
        }
    }

    /// An SRAM macro of `bits` bits.
    pub fn sram(&self, bits: usize) -> Cost {
        let area = bits as f64 * self.sram_ge_per_bit + self.sram_macro_overhead_ge;
        Cost {
            area_ge: area,
            delay_ns: self.sram_delay_base_ns
                + self.sram_delay_per_log2_ns * (bits.max(2) as f64).log2(),
            power_mw: area * self.power_per_ge_mw,
        }
    }

    /// A block of `gates` simple gates with a critical path of `levels`
    /// logic levels.
    pub fn logic(&self, gates: usize, levels: usize) -> Cost {
        let area = gates as f64 * self.gate_area_ge;
        Cost {
            area_ge: area,
            delay_ns: levels as f64 * self.gate_delay_ns,
            power_mw: area * self.power_per_ge_mw,
        }
    }

    /// A 6→64 one-hot decoder (Figure 8): 64 AND gates over 6 inputs,
    /// two levels.
    pub fn decoder6x64(&self) -> Cost {
        self.logic(64 * 2, 2)
    }

    /// An n-input OR reduction tree.
    pub fn or_tree(&self, inputs: usize) -> Cost {
        let gates = inputs.saturating_sub(1);
        let levels = (inputs.max(2) as f64).log2().ceil() as usize;
        self.logic(gates, levels)
    }

    /// A Find-index block: "64 shift blocks followed by a single
    /// comparator" (Figure 8) — the serial shift chain makes this the
    /// deepest block in the spill path.
    pub fn find_index(&self) -> Cost {
        self.logic(64 * 4 + 24, 24)
    }

    /// A 6-bit equality comparator (the fill path's sentinel matchers,
    /// Figure 9): 6 XNORs + an AND tree.
    pub fn comparator6(&self) -> Cost {
        self.logic(6 + 5, 4)
    }

    /// An `n`-way byte multiplexer (per output byte).
    pub fn byte_mux(&self, ways: usize) -> Cost {
        self.logic(ways * 8, (ways.max(2) as f64).log2().ceil() as usize)
    }

    /// Pipeline/staging registers for `bits` bits.
    pub fn registers(&self, bits: usize) -> Cost {
        // A flop is ~4 GE; setup time folded into gate delay budget.
        self.logic(bits * 4 / (self.gate_area_ge as usize).max(1), 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_adds_delay_parallel_takes_max() {
        let t = Tech::tsmc65();
        let a = t.logic(10, 2);
        let b = t.logic(20, 5);
        let series = a + b;
        assert!((series.delay_ns - (a.delay_ns + b.delay_ns)).abs() < 1e-12);
        let par = a.parallel(b);
        assert!((par.delay_ns - b.delay_ns).abs() < 1e-12);
        assert!((par.area_ge - (a.area_ge + b.area_ge)).abs() < 1e-12);
    }

    #[test]
    fn off_path_costs_area_not_delay() {
        let t = Tech::tsmc65();
        let main = t.logic(10, 3);
        let side = t.logic(1000, 20);
        let combined = main.with_off_path(side);
        assert!((combined.delay_ns - main.delay_ns).abs() < 1e-12);
        assert!(combined.area_ge > main.area_ge);
    }

    #[test]
    fn sram_scales_with_bits() {
        let t = Tech::tsmc65();
        let small = t.sram(1 << 10);
        let big = t.sram(1 << 18);
        assert!(big.area_ge > small.area_ge * 30.0);
        assert!(big.delay_ns > small.delay_ns);
        assert!(big.delay_ns < small.delay_ns * 2.0, "delay grows with log2");
    }

    #[test]
    fn baseline_l1_lands_near_table2() {
        // 32 KB data + tag: the baseline row of Table 2 is ~347 k GE,
        // 1.62 ns, 15.84 mW. The model must land within 10 %.
        let t = Tech::tsmc65();
        let data_bits = 32 * 1024 * 8;
        let tag_bits = 512 * 25;
        let l1 = t.sram(data_bits).parallel(t.sram(tag_bits))
            + t.logic(2_000, 6) // hit logic, aligner
            ;
        assert!(
            (l1.area_ge - 347_329.0).abs() / 347_329.0 < 0.10,
            "area {} vs 347329",
            l1.area_ge
        );
        assert!(
            (l1.delay_ns - 1.62).abs() / 1.62 < 0.10,
            "delay {} vs 1.62",
            l1.delay_ns
        );
        assert!(
            (l1.power_mw - 15.84).abs() / 15.84 < 0.15,
            "power {} vs 15.84",
            l1.power_mw
        );
    }

    #[test]
    fn component_areas_are_positive_and_ordered() {
        let t = Tech::tsmc65();
        assert!(t.decoder6x64().area_ge > 0.0);
        assert!(t.find_index().area_ge > t.comparator6().area_ge);
        assert!(t.or_tree(64).delay_ns > t.or_tree(4).delay_ns);
    }
}
