//! Structural models of the fill and spill conversion modules
//! (Figures 8 and 9; the right-hand columns of Tables 2 and 7).

use crate::gates::{Cost, Tech};
use crate::l1_model::L1Variant;

/// The spill module (L1 → L2, Algorithm 1 / Figure 8): pure combinational
/// logic building the califorms-sentinel format in one cycle.
///
/// Structure (the circled steps of Figure 8):
/// 1. OR-reduce the 64 metadata bits into the L2 metadata bit;
/// 7. 64 six-to-64 decoders + a 64-wide OR per pattern build the
///    used-values vector, then a Find-index-of-first-0 picks the sentinel;
/// 8. four chained Find-index-of-first-1 blocks locate the first four
///    security bytes;
/// 9. a crossbar displaces the header bytes' data and writes the
///    header/sentinel (steps 9–11).
pub fn spill_module(tech: &Tech) -> Cost {
    let metadata_or = tech.or_tree(64);
    // Step 7: decoders are parallel; the per-pattern OR across 64 decoder
    // outputs is a 64-input tree (64 of them, one per pattern).
    let decoders = (0..64)
        .map(|_| tech.decoder6x64())
        .fold(Cost::ZERO, Cost::parallel);
    let used_values = (0..64)
        .map(|_| tech.or_tree(64))
        .fold(Cost::ZERO, Cost::parallel);
    let sentinel_find = tech.find_index();
    // Step 8: four *successive* find-index blocks (each masks the previous
    // hit) — the serial chain that dominates the 5.5 ns delay and that the
    // paper suggests pipelining into four stages.
    let first_four = tech.find_index() + tech.find_index() + tech.find_index() + tech.find_index();
    // Step 9–11: crossbar + header packing + sentinel broadcast.
    let crossbar = tech.logic(4 * 64 * 8, 6);
    let header = tech.logic(1_200, 4);
    let staging = tech.registers(64 * 8 + 64);

    metadata_or
        .parallel(decoders + used_values + sentinel_find)
        .parallel(first_four.parallel(Cost::ZERO))
        + crossbar
        + header
        + staging
}

/// The fill module (L2 → L1, Algorithm 2 / Figure 9).
///
/// The count-code comparators and the 60-way parallel sentinel comparator
/// bank run side by side; parallelism is what keeps fill at ~1.4 ns.
pub fn fill_module(tech: &Tech) -> Cost {
    let code_cmp = tech.logic(4 * 8, 4); // the !=00/==10/==11 blocks
                                         // The sentinel must first be extracted from byte 3 (an extraction mux
                                         // gated by the ==11 compare) before the comparator bank can run — the
                                         // serialisation that puts fill at ~1.4 ns rather than a handful of
                                         // gate delays.
    let sentinel_extract = tech.logic(200, 6);
    let addr_decode = (0..4)
        .map(|_| tech.decoder6x64())
        .fold(Cost::ZERO, Cost::parallel);
    let sentinel_bank = (0..60)
        .map(|_| tech.comparator6())
        .fold(Cost::ZERO, Cost::parallel)
        + tech.or_tree(60);
    let restore_mux = tech.byte_mux(4).parallel(tech.logic(4 * 64, 6));
    let metadata_set = tech.logic(400, 2);
    let staging = tech.registers(64 * 8 + 64);

    code_cmp
        + sentinel_extract
        + addr_decode.parallel(sentinel_bank)
        + restore_mux
        + metadata_set
        + staging
}

/// Fill/spill module costs per L1 variant (Table 7's right-hand columns):
/// the converters for the 4B/1B variants carry extra format-adaptation
/// logic (their L1 formats are not the plain bit vector), which the paper
/// measures as ~10–30 % more area/power at essentially the same delay.
pub fn conversion_modules(variant: L1Variant, tech: &Tech) -> Option<(Cost, Cost)> {
    if variant == L1Variant::Baseline {
        return None;
    }
    let fill = fill_module(tech);
    let spill = spill_module(tech);
    let (fill_extra, spill_extra) = match variant {
        L1Variant::Baseline => unreachable!(),
        L1Variant::Bitvector8B => (Cost::ZERO, Cost::ZERO),
        // Reconstruct/deconstruct the in-band chunk bit vectors.
        L1Variant::Bitvector4B => (tech.logic(500, 3), tech.logic(750, 2)),
        L1Variant::Bitvector1B => (tech.logic(780, 3), tech.logic(860, 2)),
    };
    Some((fill + fill_extra, spill + spill_extra))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spill_is_much_slower_than_fill() {
        let t = Tech::tsmc65();
        let spill = spill_module(&t);
        let fill = fill_module(&t);
        // Paper: 5.50 ns vs 1.43 ns (~3.8×).
        let ratio = spill.delay_ns / fill.delay_ns;
        assert!(
            (2.5..6.0).contains(&ratio),
            "spill/fill delay ratio {ratio:.2}"
        );
    }

    #[test]
    fn spill_is_larger_than_fill() {
        let t = Tech::tsmc65();
        // Paper: 34.6 k GE vs 9.0 k GE (~3.9×).
        let ratio = spill_module(&t).area_ge / fill_module(&t).area_ge;
        assert!((2.0..6.0).contains(&ratio), "area ratio {ratio:.2}");
    }

    #[test]
    fn magnitudes_near_table2() {
        let t = Tech::tsmc65();
        let fill = fill_module(&t);
        let spill = spill_module(&t);
        assert!(
            (5_000.0..15_000.0).contains(&fill.area_ge),
            "fill area {} vs paper 8957",
            fill.area_ge
        );
        assert!(
            (24_000.0..48_000.0).contains(&spill.area_ge),
            "spill area {} vs paper 34562",
            spill.area_ge
        );
        assert!(
            (1.0..2.1).contains(&fill.delay_ns),
            "fill delay {} vs paper 1.43",
            fill.delay_ns
        );
        assert!(
            (4.0..7.5).contains(&spill.delay_ns),
            "spill delay {} vs paper 5.50",
            spill.delay_ns
        );
    }

    #[test]
    fn fill_delay_fits_the_l1_access_period() {
        // Section 8.1: "the latency impact of the fill operation is within
        // the access period of the L1 design" (1.62 ns baseline).
        let t = Tech::tsmc65();
        assert!(fill_module(&t).delay_ns <= 2.1);
    }

    #[test]
    fn variant_converters_cost_slightly_more() {
        let t = Tech::tsmc65();
        let (f8, s8) = conversion_modules(L1Variant::Bitvector8B, &t).unwrap();
        let (f4, s4) = conversion_modules(L1Variant::Bitvector4B, &t).unwrap();
        let (f1, s1) = conversion_modules(L1Variant::Bitvector1B, &t).unwrap();
        assert!(f4.area_ge > f8.area_ge && f1.area_ge > f8.area_ge);
        assert!(s4.area_ge > s8.area_ge && s1.area_ge > s8.area_ge);
        assert!(conversion_modules(L1Variant::Baseline, &t).is_none());
    }
}
