//! # califorms-vlsi
//!
//! An analytic gate-equivalent area / delay / power model of the Califorms
//! L1 designs and the fill/spill converters — the substitute for the
//! paper's 65 nm TSMC synthesis + ARM Artisan memory-compiler flow
//! (Tables 2 and 7; substitution recorded in DESIGN.md §2).
//!
//! The model is *structural*: it counts the same building blocks the
//! paper's Figures 8 and 9 draw (SRAM macros, 6→64 decoders, find-index
//! chains, comparator banks, crossbars) and converts them to numbers with
//! a handful of 65 nm-calibrated technology constants ([`gates::Tech`]).
//! Absolute values are calibrated against the paper's baseline; what the
//! reproduction asserts is the *orderings and ratios* the paper's
//! conclusions rest on:
//!
//! * L1 delay: baseline < califorms-8B (≈ +2 %) < califorms-1B (≈ +22 %)
//!   < califorms-4B (≈ +49 %);
//! * spill is several times slower than fill (pure combinational sentinel
//!   search), but both are off the hit path;
//! * metadata storage: 8B = 12.5 %, 4B = 6.25 %, 1B = 1.56 % of the data
//!   array.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gates;
pub mod l1_model;
pub mod spillfill;
pub mod tables;

pub use gates::{Cost, Tech};
pub use l1_model::{L1Design, L1Variant};
pub use spillfill::{fill_module, spill_module};
pub use tables::{table2, table7, TableRow};
