//! Renderers for the paper's VLSI tables (Tables 2 and 7), printing the
//! modelled numbers next to the paper's synthesis results.

use crate::gates::{Cost, Tech};
use crate::l1_model::{L1Design, L1Variant};
use crate::spillfill::conversion_modules;

/// One row of Table 2 / Table 7.
#[derive(Debug, Clone)]
pub struct TableRow {
    /// Design name.
    pub name: &'static str,
    /// Main synthesis results for the L1.
    pub main: Cost,
    /// (% area, % delay, % power) vs baseline; `None` for the baseline row.
    pub l1_overheads: Option<(f64, f64, f64)>,
    /// Fill module cost; `None` for the baseline row.
    pub fill: Option<Cost>,
    /// Spill module cost; `None` for the baseline row.
    pub spill: Option<Cost>,
}

/// The paper's measured values for a row, for side-by-side reporting.
#[derive(Debug, Clone, Copy)]
pub struct PaperRow {
    /// Design name.
    pub name: &'static str,
    /// Area GE / delay ns / power mW of the main synthesis.
    pub main: (f64, f64, f64),
    /// (% area, % delay, % power) L1 overheads.
    pub l1_overheads: Option<(f64, f64, f64)>,
    /// Fill module (GE, ns, mW).
    pub fill: Option<(f64, f64, f64)>,
    /// Spill module (GE, ns, mW).
    pub spill: Option<(f64, f64, f64)>,
}

/// The paper's Table 7 (which subsumes Table 2's two rows).
pub fn paper_table7() -> Vec<PaperRow> {
    vec![
        PaperRow {
            name: "Baseline",
            main: (347_329.19, 1.62, 15.84),
            l1_overheads: None,
            fill: None,
            spill: None,
        },
        PaperRow {
            name: "Califorms-8B",
            main: (412_263.87, 1.65, 16.17),
            l1_overheads: Some((18.69, 1.85, 2.12)),
            fill: Some((8_957.16, 1.43, 0.18)),
            spill: Some((34_561.80, 5.50, 0.52)),
        },
        PaperRow {
            name: "Califorms-4B",
            main: (370_972.35, 2.42, 17.95),
            l1_overheads: Some((6.80, 49.38, 11.00)),
            fill: Some((9_770.04, 1.92, 0.21)),
            spill: Some((35_775.36, 5.99, 0.68)),
        },
        PaperRow {
            name: "Califorms-1B",
            main: (356_694.82, 1.98, 16.00),
            l1_overheads: Some((2.69, 22.22, 1.06)),
            fill: Some((10_223.28, 1.94, 0.22)),
            spill: Some((35_958.24, 5.99, 0.67)),
        },
    ]
}

fn model_rows(variants: &[L1Variant], tech: &Tech) -> Vec<TableRow> {
    let baseline = L1Design::model(L1Variant::Baseline, tech);
    variants
        .iter()
        .map(|&v| {
            let design = L1Design::model(v, tech);
            let (fill, spill) = match conversion_modules(v, tech) {
                Some((f, s)) => (Some(f), Some(s)),
                None => (None, None),
            };
            TableRow {
                name: v.name(),
                main: design.cost,
                l1_overheads: (v != L1Variant::Baseline).then(|| design.overhead_vs(&baseline)),
                fill,
                spill,
            }
        })
        .collect()
}

/// Table 2: baseline vs Califorms-8B.
pub fn table2(tech: &Tech) -> Vec<TableRow> {
    model_rows(&[L1Variant::Baseline, L1Variant::Bitvector8B], tech)
}

/// Table 7: all four designs.
pub fn table7(tech: &Tech) -> Vec<TableRow> {
    model_rows(&L1Variant::ALL, tech)
}

/// Formats modelled rows next to the paper's rows, Markdown-ish.
pub fn render_comparison(rows: &[TableRow]) -> String {
    let paper = paper_table7();
    let mut out = String::new();
    out.push_str(
        "design        | source | area GE   | delay ns | power mW | L1 ovh (a%/d%/p%)   | fill GE/ns | spill GE/ns\n",
    );
    out.push_str(
        "--------------+--------+-----------+----------+----------+---------------------+------------+------------\n",
    );
    for row in rows {
        let p = paper
            .iter()
            .find(|p| p.name == row.name)
            .expect("every modelled design has a paper row");
        let ovh = |o: Option<(f64, f64, f64)>| match o {
            Some((a, d, pw)) => format!("{a:5.1}/{d:5.1}/{pw:5.1}"),
            None => "        —        ".to_string(),
        };
        let module = |c: Option<(f64, f64)>| match c {
            Some((ge, ns)) => format!("{ge:6.0}/{ns:4.2}"),
            None => "     —     ".to_string(),
        };
        out.push_str(&format!(
            "{:<13} | paper  | {:>9.0} | {:>8.2} | {:>8.2} | {:>19} | {} | {}\n",
            row.name,
            p.main.0,
            p.main.1,
            p.main.2,
            ovh(p.l1_overheads),
            module(p.fill.map(|f| (f.0, f.1))),
            module(p.spill.map(|s| (s.0, s.1))),
        ));
        out.push_str(&format!(
            "{:<13} | model  | {:>9.0} | {:>8.2} | {:>8.2} | {:>19} | {} | {}\n",
            "",
            row.main.area_ge,
            row.main.delay_ns,
            row.main.power_mw,
            ovh(row.l1_overheads),
            module(row.fill.map(|f| (f.area_ge, f.delay_ns))),
            module(row.spill.map(|s| (s.area_ge, s.delay_ns))),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_two_rows_table7_four() {
        let t = Tech::tsmc65();
        assert_eq!(table2(&t).len(), 2);
        assert_eq!(table7(&t).len(), 4);
    }

    #[test]
    fn baseline_row_has_no_overheads_or_modules() {
        let t = Tech::tsmc65();
        let rows = table7(&t);
        assert!(rows[0].l1_overheads.is_none());
        assert!(rows[0].fill.is_none() && rows[0].spill.is_none());
        for row in &rows[1..] {
            assert!(row.l1_overheads.is_some());
            assert!(row.fill.is_some() && row.spill.is_some());
        }
    }

    #[test]
    fn render_mentions_every_design_and_both_sources() {
        let t = Tech::tsmc65();
        let s = render_comparison(&table7(&t));
        for name in ["Baseline", "Califorms-8B", "Califorms-4B", "Califorms-1B"] {
            assert!(s.contains(name), "missing {name}");
        }
        assert!(s.contains("paper") && s.contains("model"));
    }

    #[test]
    fn paper_rows_match_published_values() {
        let rows = paper_table7();
        assert_eq!(rows[0].main.0, 347_329.19);
        assert_eq!(rows[1].l1_overheads.unwrap().0, 18.69);
        assert_eq!(rows[1].spill.unwrap().1, 5.50);
        assert_eq!(rows[3].l1_overheads.unwrap().1, 22.22);
    }
}
