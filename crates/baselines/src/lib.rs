//! # califorms-baselines
//!
//! Executable models of the prior hardware memory-safety schemes the paper
//! compares against (Section 9), plus the qualitative comparison matrices
//! of Tables 4, 5 and 6.
//!
//! Three mechanism classes (Figure 13):
//!
//! * [`mpx`] — **disjoint metadata whitelisting** (Intel MPX-like): bounds
//!   per pointer in a shadow table, explicit checks on dereference.
//! * [`adi`] — **cojoined metadata whitelisting** (SPARC ADI-like): 4-bit
//!   colours per cache-line granule matched against pointer tags.
//! * [`rest`] — **inlined metadata blacklisting** (REST-like): 8–64 B
//!   token tripwires around objects.
//!
//! Each model exposes the same tiny "machine" interface (allocate, free,
//! access) so the comparison bench can throw the identical attack suite at
//! all of them — and at Califorms — and print who detects what
//! ([`comparison::detection_matrix`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adi;
pub mod comparison;
pub mod mpx;
pub mod rest;

pub use adi::AdiMachine;
pub use comparison::{detection_matrix, table4, table5, table6, AttackKind, Detection};
pub use mpx::MpxMachine;
pub use rest::RestMachine;
