//! The paper's comparison tables (Tables 4, 5, 6) as typed data, plus an
//! *executable* detection matrix that runs the same attack suite against
//! the REST/ADI/MPX models and Califorms itself.

use crate::adi::AdiMachine;
use crate::mpx::{MpxAccess, MpxMachine};
use crate::rest::{RestAccess, RestMachine};
use califorms_core::line::CaliformedLine;

/// Tri-state support marker used in the qualitative tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Support {
    /// Supported (✓).
    Yes,
    /// Unsupported (✗).
    No,
    /// Supported with the table's footnote caveat (✓*, ✗†, …).
    Qualified(&'static str),
}

impl core::fmt::Display for Support {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Support::Yes => write!(f, "yes"),
            Support::No => write!(f, "no"),
            Support::Qualified(q) => write!(f, "{q}"),
        }
    }
}

/// One row of Table 4 (security comparison).
#[derive(Debug, Clone)]
pub struct SecurityRow {
    /// Proposal name.
    pub proposal: &'static str,
    /// Protection granularity.
    pub granularity: &'static str,
    /// Intra-object protection.
    pub intra_object: Support,
    /// Binary composability with uninstrumented modules.
    pub binary_composability: Support,
    /// Temporal safety.
    pub temporal_safety: Support,
}

/// Table 4 verbatim (footnotes as qualified markers).
pub fn table4() -> Vec<SecurityRow> {
    use Support::*;
    let rows = [
        (
            "Hardbound",
            "Byte",
            Qualified("yes, with bounds narrowing"),
            No,
            No,
        ),
        (
            "Watchdog",
            "Byte",
            Qualified("yes, with bounds narrowing"),
            No,
            Yes,
        ),
        (
            "WatchdogLite",
            "Byte",
            Qualified("yes, with bounds narrowing"),
            No,
            Yes,
        ),
        (
            "Intel MPX",
            "Byte",
            Qualified("yes, with bounds narrowing"),
            Qualified("execution compatible; protection dropped on external writes"),
            No,
        ),
        (
            "BOGO",
            "Byte",
            Qualified("yes, with bounds narrowing"),
            Qualified("execution compatible; protection dropped on external writes"),
            Yes,
        ),
        ("PUMP", "Word", No, Yes, Yes),
        (
            "CHERI",
            "Byte",
            Qualified("hardware supports narrowing; foregone (capability logic)"),
            No,
            No,
        ),
        (
            "CHERI concentrate",
            "Byte",
            Qualified("hardware supports narrowing; foregone (capability logic)"),
            No,
            No,
        ),
        (
            "SPARC ADI",
            "Cache line",
            No,
            Yes,
            Qualified("yes, limited to 13 tags"),
        ),
        ("SafeMem", "Cache line", No, Yes, No),
        (
            "REST",
            "8-64B",
            No,
            Yes,
            Qualified("yes, with allocator randomisation"),
        ),
        (
            "Califorms",
            "Byte",
            Yes,
            Yes,
            Qualified("yes, with allocator randomisation"),
        ),
    ];
    rows.into_iter()
        .map(
            |(proposal, granularity, intra, compose, temporal)| SecurityRow {
                proposal,
                granularity,
                intra_object: intra,
                binary_composability: compose,
                temporal_safety: temporal,
            },
        )
        .collect()
}

/// One row of Table 5 (performance comparison).
#[derive(Debug, Clone)]
pub struct PerformanceRow {
    /// Proposal name.
    pub proposal: &'static str,
    /// Metadata footprint.
    pub metadata_overhead: &'static str,
    /// What memory overhead scales with.
    pub memory_overhead_scales_with: &'static str,
    /// What performance overhead scales with.
    pub performance_overhead_scales_with: &'static str,
    /// Main runtime operations.
    pub main_operations: &'static str,
}

/// Table 5 verbatim.
pub fn table5() -> Vec<PerformanceRow> {
    let rows = [
        (
            "Hardbound",
            "0-2 words per ptr, 4b per word",
            "# of ptrs and prog memory footprint",
            "# of ptr derefs",
            "1-2 mem ref for bounds (may be cached), check uops",
        ),
        (
            "Watchdog",
            "4 words per ptr",
            "# of ptrs and allocations",
            "# of ptr derefs",
            "1-3 mem ref for bounds (may be cached), check uops",
        ),
        (
            "WatchdogLite",
            "4 words per ptr",
            "# of ptrs and allocations",
            "# of ptr ops",
            "1-3 mem ref for bounds (may be cached), check & propagate insns",
        ),
        (
            "Intel MPX",
            "2 words per ptr",
            "# of ptrs",
            "# of ptr derefs",
            "2+ mem ref for bounds (may be cached), check & propagate insns",
        ),
        (
            "BOGO",
            "2 words per ptr",
            "# of ptrs",
            "# of ptr derefs",
            "MPX ops + ptr miss exception handling, page permission mods",
        ),
        (
            "PUMP",
            "64b per cache line",
            "prog memory footprint",
            "# of ptr ops",
            "1 mem ref for tags (may be cached), fetch and check rules; propagate tags",
        ),
        (
            "CHERI",
            "256b per ptr",
            "# of ptrs and physical mem",
            "# of ptr ops",
            "1+ mem ref for capability (may be cached), capability management insns",
        ),
        (
            "CHERI concentrate",
            "ptr size is 2x",
            "# of ptrs",
            "# of ptr ops",
            "wide ptr load (may be cached), capability management insns",
        ),
        (
            "SPARC ADI",
            "4b per cache line",
            "prog memory footprint",
            "# of tag (un)set ops",
            "(un)set tag",
        ),
        (
            "SafeMem",
            "2x blacklisted memory",
            "blacklisted memory",
            "# of ECC (un)set ops",
            "syscall to scramble ECC, copy data content",
        ),
        (
            "REST",
            "8-64B token",
            "blacklisted memory",
            "# of arm/disarm insns",
            "execute arm/disarm insns",
        ),
        (
            "Califorms",
            "byte-granular security byte",
            "blacklisted memory",
            "# of CFORM insns",
            "execute CFORM insns",
        ),
    ];
    rows.into_iter()
        .map(|(p, m, mem, perf, ops)| PerformanceRow {
            proposal: p,
            metadata_overhead: m,
            memory_overhead_scales_with: mem,
            performance_overhead_scales_with: perf,
            main_operations: ops,
        })
        .collect()
}

/// One row of Table 6 (implementation complexity).
#[derive(Debug, Clone)]
pub struct ComplexityRow {
    /// Proposal name.
    pub proposal: &'static str,
    /// Core pipeline changes.
    pub core: &'static str,
    /// Cache/TLB changes.
    pub caches: &'static str,
    /// Main-memory changes.
    pub memory: &'static str,
    /// Software changes.
    pub software: &'static str,
}

/// Table 6 verbatim (abridged to the structural content).
pub fn table6() -> Vec<ComplexityRow> {
    let rows = [
        (
            "Hardbound",
            "uop injection & logic for ptr meta; extended reg file/data path",
            "tag cache and its TLB",
            "none",
            "compiler & allocator annotate ptr metadata",
        ),
        (
            "Watchdog",
            "uop injection & logic for ptr meta; extended reg file/data path",
            "ptr lock cache",
            "none",
            "compiler & allocator annotate ptr metadata",
        ),
        (
            "WatchdogLite",
            "none",
            "none",
            "none",
            "compiler & allocator annotate ptrs; compiler inserts meta propagation and check insns",
        ),
        (
            "Intel MPX",
            "closed platform (likely similar to Hardbound)",
            "closed platform",
            "closed platform",
            "compiler & allocator annotate ptrs; compiler inserts meta propagation and check insns",
        ),
        (
            "BOGO",
            "closed platform (likely similar to Hardbound)",
            "closed platform",
            "closed platform",
            "MPX mods + kernel mods for bounds page right management",
        ),
        (
            "PUMP",
            "extend all data units by tag width; modified pipeline stages; new miss handler",
            "rule cache",
            "none",
            "compiler & allocator (un)set memory, tag ptrs",
        ),
        (
            "CHERI",
            "capability reg file, coprocessor integrated with pipeline",
            "capability caches",
            "none",
            "compiler & allocator annotate ptrs; compiler inserts meta propagation and check insns",
        ),
        (
            "CHERI concentrate",
            "modify pipeline to integrate ptr checks",
            "none",
            "none",
            "compiler & allocator annotate ptrs; compiler inserts meta propagation and check insns",
        ),
        (
            "SPARC ADI",
            "closed platform",
            "closed platform",
            "closed platform",
            "compiler & allocator (un)set memory, tag ptrs",
        ),
        ("SafeMem", "none", "none", "repurposes ECC bits", "none"),
        (
            "REST",
            "none",
            "1-8b per L1D line, 1 comparator",
            "none",
            "compiler & allocator (un)set tags; allocator randomises allocation order/placement",
        ),
        (
            "Califorms",
            "none",
            "8b per L1D line, 1b per L2/L3 line",
            "uses unused ECC bits",
            "compiler & allocator mods to (un)set tags; compiler inserts intra-object spacing",
        ),
    ];
    rows.into_iter()
        .map(|(p, core, caches, memory, software)| ComplexityRow {
            proposal: p,
            core,
            caches,
            memory,
            software,
        })
        .collect()
}

// ---------------------------------------------------------------------
// Executable detection matrix
// ---------------------------------------------------------------------

/// The attack suite thrown at every executable model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackKind {
    /// Overflow from one field into the next within one object.
    IntraObjectOverflow,
    /// Overflow from one object into its neighbour.
    InterObjectOverflow,
    /// Dereference of a freed object.
    UseAfterFree,
}

impl AttackKind {
    /// All three attacks.
    pub const ALL: [AttackKind; 3] = [
        AttackKind::IntraObjectOverflow,
        AttackKind::InterObjectOverflow,
        AttackKind::UseAfterFree,
    ];
}

/// Whether a scheme's executable model caught the attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Detection {
    /// Caught.
    Detected,
    /// Missed.
    Missed,
}

/// Runs the attack suite against the four executable models. Returns
/// `(scheme, [(attack, detection); 3])` per scheme.
///
/// The scenarios place two 64-byte objects side by side, each split into
/// two fields at offset 32, fence per each scheme's mechanism and
/// granularity, then perform the three rogue accesses.
pub fn detection_matrix() -> Vec<(&'static str, Vec<(AttackKind, Detection)>)> {
    vec![
        ("Califorms", califorms_detections()),
        ("REST", rest_detections()),
        ("SPARC ADI", adi_detections()),
        ("Intel MPX", mpx_detections()),
    ]
}

fn verdict(detected: bool) -> Detection {
    if detected {
        Detection::Detected
    } else {
        Detection::Missed
    }
}

fn califorms_detections() -> Vec<(AttackKind, Detection)> {
    // One line = object A [0,64); fields at [0,30) and [33,64); a 3-byte
    // security span fences them. Object B in the next line with a leading
    // span. Byte granularity lets Califorms express all three fences.
    let mut obj_a = CaliformedLine::zeroed();
    for b in 30..33 {
        obj_a.set_security_byte(b);
    }
    let intra = obj_a.write_byte(30, 0xAA).is_err();

    let mut obj_b = CaliformedLine::zeroed();
    obj_b.set_security_byte(0); // leading fence of B
    let inter = obj_b.write_byte(0, 0xAA).is_err();

    // Freed object: clean-before-use keeps it fully califormed.
    let mut freed = CaliformedLine::zeroed();
    for b in 0..64 {
        freed.set_security_byte(b);
    }
    let uaf = freed.is_security_byte(8); // any dereference faults

    vec![
        (AttackKind::IntraObjectOverflow, verdict(intra)),
        (AttackKind::InterObjectOverflow, verdict(inter)),
        (AttackKind::UseAfterFree, verdict(uaf)),
    ]
}

fn rest_detections() -> Vec<(AttackKind, Detection)> {
    let mut m = RestMachine::new(64);
    // Inter-object redzone after object A at [0x1000, 0x1040).
    m.arm(0x1040, 64);
    // Intra-object: a 64 B token between 32 B fields would double the
    // object; REST deploys without intra fences (Section 9: "intra-object
    // safety was not supported by REST owing to the large memory
    // overhead").
    let intra = matches!(m.access(0x1000 + 32, 1), RestAccess::Tripped { .. });
    let inter = matches!(m.access(0x1040, 1), RestAccess::Tripped { .. });
    // UAF: the freed object is re-armed (quarantine).
    let mut m2 = RestMachine::new(64);
    m2.arm(0x2000, 64); // free(obj) arms its tokens
    let uaf = matches!(m2.access(0x2008, 8), RestAccess::Tripped { .. });
    vec![
        (AttackKind::IntraObjectOverflow, verdict(intra)),
        (AttackKind::InterObjectOverflow, verdict(inter)),
        (AttackKind::UseAfterFree, verdict(uaf)),
    ]
}

fn adi_detections() -> Vec<(AttackKind, Detection)> {
    let mut m = AdiMachine::new();
    let a = m.allocate(0x1000, 64);
    let _b = m.allocate(0x1040, 64);
    let intra = matches!(m.access(a, 32, 1), crate::adi::AdiAccess::Mismatch { .. });
    let inter = matches!(m.access(a, 64, 1), crate::adi::AdiAccess::Mismatch { .. });
    let c = m.allocate(0x2000, 64);
    m.free(c, 64);
    let uaf = matches!(m.access(c, 0, 8), crate::adi::AdiAccess::Mismatch { .. });
    vec![
        (AttackKind::IntraObjectOverflow, verdict(intra)),
        (AttackKind::InterObjectOverflow, verdict(inter)),
        (AttackKind::UseAfterFree, verdict(uaf)),
    ]
}

fn mpx_detections() -> Vec<(AttackKind, Detection)> {
    let mut m = MpxMachine::new();
    m.set_bounds(1, 0x1000, 0x1040); // whole-object bounds (no narrowing:
                                     // production compilers don't support it)
    let intra = matches!(
        m.access(1, 0x1000 + 32, 1),
        MpxAccess::BoundViolation { .. }
    );
    let inter = matches!(m.access(1, 0x1040, 1), MpxAccess::BoundViolation { .. });
    m.free(1);
    let uaf = !matches!(m.access(1, 0x1000, 8), MpxAccess::Ok);
    vec![
        (AttackKind::IntraObjectOverflow, verdict(intra)),
        (AttackKind::InterObjectOverflow, verdict(inter)),
        (AttackKind::UseAfterFree, verdict(uaf)),
    ]
}

/// Renders Table 4 as aligned text.
pub fn render_table4() -> String {
    let mut out = String::from(
        "proposal          | granularity | intra-object                  | binary composability | temporal\n",
    );
    for r in table4() {
        out.push_str(&format!(
            "{:<17} | {:<11} | {:<29} | {:<20} | {}\n",
            r.proposal,
            r.granularity,
            r.intra_object.to_string(),
            r.binary_composability.to_string(),
            r.temporal_safety
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_have_twelve_proposals_ending_with_califorms() {
        for len in [table4().len(), table5().len(), table6().len()] {
            assert_eq!(len, 12);
        }
        assert_eq!(table4().last().unwrap().proposal, "Califorms");
        assert_eq!(table5().last().unwrap().proposal, "Califorms");
        assert_eq!(table6().last().unwrap().proposal, "Califorms");
    }

    #[test]
    fn califorms_is_the_only_unqualified_intra_object_yes() {
        let full_support: Vec<&str> = table4()
            .iter()
            .filter(|r| r.intra_object == Support::Yes)
            .map(|r| r.proposal)
            .collect();
        assert_eq!(full_support, vec!["Califorms"]);
    }

    #[test]
    fn detection_matrix_matches_table4_claims() {
        let matrix = detection_matrix();
        let get = |scheme: &str, attack: AttackKind| {
            matrix
                .iter()
                .find(|(s, _)| *s == scheme)
                .unwrap()
                .1
                .iter()
                .find(|(a, _)| *a == attack)
                .unwrap()
                .1
        };
        use AttackKind::*;
        // Califorms: everything.
        for a in AttackKind::ALL {
            assert_eq!(get("Califorms", a), Detection::Detected, "Califorms {a:?}");
        }
        // REST: no intra-object, yes inter/UAF.
        assert_eq!(get("REST", IntraObjectOverflow), Detection::Missed);
        assert_eq!(get("REST", InterObjectOverflow), Detection::Detected);
        assert_eq!(get("REST", UseAfterFree), Detection::Detected);
        // ADI: no intra-object, yes inter/UAF.
        assert_eq!(get("SPARC ADI", IntraObjectOverflow), Detection::Missed);
        assert_eq!(get("SPARC ADI", InterObjectOverflow), Detection::Detected);
        assert_eq!(get("SPARC ADI", UseAfterFree), Detection::Detected);
        // MPX (no narrowing): no intra, yes inter, no temporal.
        assert_eq!(get("Intel MPX", IntraObjectOverflow), Detection::Missed);
        assert_eq!(get("Intel MPX", InterObjectOverflow), Detection::Detected);
        assert_eq!(get("Intel MPX", UseAfterFree), Detection::Missed);
    }

    #[test]
    fn render_contains_all_proposals() {
        let s = render_table4();
        for r in table4() {
            assert!(s.contains(r.proposal));
        }
    }
}
