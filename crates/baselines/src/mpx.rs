//! An Intel MPX-like disjoint-bounds machine (disjoint metadata
//! whitelisting).
//!
//! Every protected pointer has a `(lower, upper)` bounds pair in a shadow
//! table; each dereference is explicitly checked. The model also counts
//! the *extra memory operations* bounds checking incurs — the mechanism
//! behind MPX's ~1.7× slowdown (Table 5's "2+ mem ref for bounds") — and
//! reproduces the interoperability hazard the paper highlights: bounds
//! are **dropped** when a pointer passes through uninstrumented code.

use std::collections::HashMap;

/// A bounds entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bounds {
    /// Lowest legal byte.
    pub lower: u64,
    /// One past the highest legal byte.
    pub upper: u64,
}

/// Outcome of a checked dereference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MpxAccess {
    /// In bounds.
    Ok,
    /// Out of bounds — `#BR` trap.
    BoundViolation {
        /// The bounds that were violated.
        bounds: Bounds,
    },
    /// Pointer had no bounds (dropped or never set): access proceeds
    /// **unchecked** — MPX's compatibility-over-safety default.
    Unchecked,
}

/// The MPX machine: a shadow bounds table keyed by pointer identity.
#[derive(Debug, Default)]
pub struct MpxMachine {
    bounds: HashMap<u64, Bounds>,
    /// Extra memory references performed for bounds-table traffic.
    pub metadata_memory_refs: u64,
    /// Bounds-check operations executed.
    pub checks: u64,
}

impl MpxMachine {
    /// A fresh machine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Associates bounds with pointer `ptr_id` (a `BNDMK`). Costs a
    /// bounds-table store.
    pub fn set_bounds(&mut self, ptr_id: u64, lower: u64, upper: u64) {
        assert!(lower < upper, "empty bounds");
        self.metadata_memory_refs += 1;
        self.bounds.insert(ptr_id, Bounds { lower, upper });
    }

    /// Narrows `ptr_id`'s bounds to a field — the bounds-narrowing that
    /// would give MPX intra-object protection but that "commercial
    /// compilers do not support" (Section 9).
    ///
    /// # Panics
    ///
    /// Panics if the pointer has no bounds or the narrowed range is not
    /// contained in the existing one.
    pub fn narrow_bounds(&mut self, ptr_id: u64, lower: u64, upper: u64) {
        let b = self.bounds[&ptr_id];
        assert!(
            b.lower <= lower && upper <= b.upper,
            "narrowed bounds must be contained"
        );
        self.metadata_memory_refs += 1;
        self.bounds.insert(ptr_id, Bounds { lower, upper });
    }

    /// Models the pointer passing through an uninstrumented module: MPX
    /// drops its bounds (the interoperability hazard of Table 4's
    /// "protection dropped when external modules modify pointer").
    pub fn pass_through_unprotected_module(&mut self, ptr_id: u64) {
        self.bounds.remove(&ptr_id);
    }

    /// Checks a dereference of `ptr_id` at `[addr, addr+len)` (a
    /// `BNDCL`/`BNDCU` pair plus the bounds-table load).
    pub fn access(&mut self, ptr_id: u64, addr: u64, len: u64) -> MpxAccess {
        self.checks += 1;
        match self.bounds.get(&ptr_id) {
            None => MpxAccess::Unchecked,
            Some(&b) => {
                self.metadata_memory_refs += 2; // bounds load (often cached) + check µops
                if addr >= b.lower && addr + len <= b.upper {
                    MpxAccess::Ok
                } else {
                    MpxAccess::BoundViolation { bounds: b }
                }
            }
        }
    }

    /// MPX provides no temporal safety (Table 4): freeing does nothing to
    /// outstanding bounds; a stale pointer with stale bounds still passes.
    pub fn free(&mut self, _ptr_id: u64) {
        // Intentionally empty: this is the vulnerability, not an omission.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_bounds_access_passes_and_costs_metadata_refs() {
        let mut m = MpxMachine::new();
        m.set_bounds(1, 0x1000, 0x1040);
        assert_eq!(m.access(1, 0x1000, 8), MpxAccess::Ok);
        assert!(m.metadata_memory_refs >= 3, "table store + load + check");
    }

    #[test]
    fn overflow_is_trapped() {
        let mut m = MpxMachine::new();
        m.set_bounds(1, 0x1000, 0x1040);
        assert!(matches!(
            m.access(1, 0x103C, 8),
            MpxAccess::BoundViolation { .. }
        ));
    }

    #[test]
    fn narrowing_gives_intra_object_protection() {
        let mut m = MpxMachine::new();
        m.set_bounds(1, 0x1000, 0x1060);
        m.narrow_bounds(1, 0x1008, 0x1048); // &obj->buf
        assert_eq!(m.access(1, 0x1008, 8), MpxAccess::Ok);
        assert!(matches!(
            m.access(1, 0x1048, 1),
            MpxAccess::BoundViolation { .. }
        ));
    }

    #[test]
    fn unprotected_module_drops_bounds_silently() {
        let mut m = MpxMachine::new();
        m.set_bounds(1, 0x1000, 0x1040);
        m.pass_through_unprotected_module(1);
        // Now even a wild access sails through unchecked.
        assert_eq!(m.access(1, 0xDEAD_0000, 64), MpxAccess::Unchecked);
    }

    #[test]
    fn no_temporal_safety() {
        let mut m = MpxMachine::new();
        m.set_bounds(1, 0x1000, 0x1040);
        m.free(1);
        assert_eq!(m.access(1, 0x1000, 8), MpxAccess::Ok, "UAF undetected");
    }

    #[test]
    #[should_panic(expected = "contained")]
    fn widening_via_narrow_is_rejected() {
        let mut m = MpxMachine::new();
        m.set_bounds(1, 0x1000, 0x1040);
        m.narrow_bounds(1, 0x0FF0, 0x1040);
    }
}
