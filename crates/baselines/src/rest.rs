//! A REST-like tripwire machine (Sinha & Sethumadhavan, ISCA 2018).
//!
//! REST blacklists memory by storing a large random **token** (8–64 B) in
//! the regions to be protected; cache fills compare lines against the
//! token. Detection granularity is therefore the token size: inter-object
//! redzones and quarantined frees work well, but fencing every *field*
//! would cost a token per field — the memory blow-up that motivates
//! Califorms' byte granularity (Section 9).

use std::collections::HashSet;

/// Outcome of a checked access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestAccess {
    /// Access touched no armed token.
    Ok,
    /// Access overlapped an armed token region.
    Tripped {
        /// Token-aligned base of the tripped region.
        token_base: u64,
    },
}

/// The REST machine: token-granular blacklisting.
#[derive(Debug)]
pub struct RestMachine {
    token_bytes: u64,
    armed: HashSet<u64>,
    /// Freed regions kept armed (quarantine) until explicitly disarmed.
    pub quarantine_frees: bool,
}

impl RestMachine {
    /// Creates a machine with the given token size (the paper's REST
    /// configurations use 8–64 B).
    ///
    /// # Panics
    ///
    /// Panics unless the token size is a power of two in `8..=64`.
    pub fn new(token_bytes: u64) -> Self {
        assert!(
            token_bytes.is_power_of_two() && (8..=64).contains(&token_bytes),
            "REST tokens are 8-64B powers of two"
        );
        Self {
            token_bytes,
            armed: HashSet::new(),
            quarantine_frees: true,
        }
    }

    /// Token size in bytes.
    pub fn token_bytes(&self) -> u64 {
        self.token_bytes
    }

    fn token_base(&self, addr: u64) -> u64 {
        addr & !(self.token_bytes - 1)
    }

    /// Arms tokens covering `[addr, addr+len)`. REST can only blacklist
    /// whole token-sized, token-aligned chunks, so the armed region is the
    /// enclosing token span — the granularity loss this model exposes.
    pub fn arm(&mut self, addr: u64, len: u64) {
        assert!(len > 0);
        let mut t = self.token_base(addr);
        let end = addr + len;
        while t < end {
            self.armed.insert(t);
            t += self.token_bytes;
        }
    }

    /// Disarms tokens covering `[addr, addr+len)`.
    pub fn disarm(&mut self, addr: u64, len: u64) {
        let mut t = self.token_base(addr);
        let end = addr + len;
        while t < end {
            self.armed.remove(&t);
            t += self.token_bytes;
        }
    }

    /// Checks an access (load or store — tripwires catch both).
    pub fn access(&self, addr: u64, len: u64) -> RestAccess {
        let mut t = self.token_base(addr);
        let end = addr + len;
        while t < end {
            if self.armed.contains(&t) {
                return RestAccess::Tripped { token_base: t };
            }
            t += self.token_bytes;
        }
        RestAccess::Ok
    }

    /// Memory overhead (bytes of token) of fencing one object with
    /// `fields` fields *intra-object* — a token between every adjacent
    /// field pair plus both ends. For Califorms the same protection costs
    /// `~(fields+1) × avg_span` bytes with 1–7 B spans; for REST it costs
    /// `(fields+1) × token` — 8–64× more.
    pub fn intra_object_fence_bytes(&self, fields: u64) -> u64 {
        (fields + 1) * self.token_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arm_and_trip() {
        let mut m = RestMachine::new(64);
        m.arm(0x1000, 64);
        assert_eq!(
            m.access(0x1010, 8),
            RestAccess::Tripped { token_base: 0x1000 }
        );
        assert_eq!(m.access(0x1040, 8), RestAccess::Ok);
    }

    #[test]
    fn arming_rounds_to_token_granularity() {
        let mut m = RestMachine::new(64);
        // Asking for a 4-byte redzone arms the whole 64 B token — the
        // granularity loss vs byte-level Califorms.
        m.arm(0x1020, 4);
        assert!(matches!(m.access(0x1000, 1), RestAccess::Tripped { .. }));
        assert!(matches!(m.access(0x103F, 1), RestAccess::Tripped { .. }));
    }

    #[test]
    fn disarm_restores_access() {
        let mut m = RestMachine::new(8);
        m.arm(0x2000, 16);
        m.disarm(0x2000, 16);
        assert_eq!(m.access(0x2000, 16), RestAccess::Ok);
    }

    #[test]
    fn spanning_access_is_caught() {
        let mut m = RestMachine::new(8);
        m.arm(0x3008, 8);
        // Access starting before the token but crossing into it.
        assert!(matches!(m.access(0x3004, 8), RestAccess::Tripped { .. }));
    }

    #[test]
    fn intra_object_fencing_is_expensive() {
        let rest64 = RestMachine::new(64);
        let rest8 = RestMachine::new(8);
        // Paper example: 5 fields → 6 fences.
        assert_eq!(rest64.intra_object_fence_bytes(5), 384);
        assert_eq!(rest8.intra_object_fence_bytes(5), 48);
        // Califorms with 1-7B spans averages 4B per fence = 24B; REST pays
        // 2-16x that.
        assert!(rest8.intra_object_fence_bytes(5) >= 2 * 24);
    }

    #[test]
    #[should_panic(expected = "8-64B")]
    fn invalid_token_size_panics() {
        RestMachine::new(128);
    }
}
