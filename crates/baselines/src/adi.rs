//! A SPARC ADI-like memory-tagging machine (cojoined metadata
//! whitelisting).
//!
//! Memory is coloured in cache-line granules; pointers carry a colour in
//! their unused top bits; an access is legal iff the colours match.
//! Temporal safety comes from recolouring on free. The limits the paper
//! highlights (Section 9.1): 13 usable colours (collisions scale with
//! allocation count), cache-line granularity (no intra-object protection),
//! and 64-bit-only pointers.

use std::collections::HashMap;

/// Colour granule size (SPARC ADI tags at cache-line granularity).
pub const GRANULE: u64 = 64;
/// Usable colours (ADI: 4 tag bits, 13 usable values).
pub const COLORS: u8 = 13;

/// A tagged pointer: address plus the colour in the (modelled) top bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaggedPtr {
    /// The address.
    pub addr: u64,
    /// The version colour.
    pub color: u8,
}

/// Outcome of a checked access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdiAccess {
    /// Pointer and memory colours matched.
    Ok,
    /// Mismatch — trapped.
    Mismatch {
        /// Colour on the pointer.
        ptr_color: u8,
        /// Colour on the memory granule.
        mem_color: u8,
    },
}

/// The ADI machine.
#[derive(Debug, Default)]
pub struct AdiMachine {
    granule_colors: HashMap<u64, u8>,
    next_color: u8,
    /// Allocations performed (drives colour reuse statistics).
    pub allocations: u64,
}

impl AdiMachine {
    /// A fresh machine (all memory colour 0).
    pub fn new() -> Self {
        Self::default()
    }

    fn granule(addr: u64) -> u64 {
        addr & !(GRANULE - 1)
    }

    /// Colours an allocation `[addr, addr+len)` with the next colour
    /// (round-robin — the reuse that creates collisions) and returns the
    /// tagged pointer.
    ///
    /// # Panics
    ///
    /// Panics unless `addr` is granule-aligned — ADI cannot colour partial
    /// granules, so real allocators must round allocations up.
    pub fn allocate(&mut self, addr: u64, len: u64) -> TaggedPtr {
        assert_eq!(addr % GRANULE, 0, "ADI colours whole granules");
        let color = 1 + (self.next_color % COLORS);
        self.next_color = self.next_color.wrapping_add(1);
        self.allocations += 1;
        let mut g = addr;
        while g < addr + len {
            self.granule_colors.insert(g, color);
            g += GRANULE;
        }
        TaggedPtr { addr, color }
    }

    /// Frees an allocation by recolouring its granules (temporal safety:
    /// stale pointers now mismatch).
    pub fn free(&mut self, ptr: TaggedPtr, len: u64) {
        let recolor = 1 + ((ptr.color + 6) % COLORS); // any different colour
        let mut g = Self::granule(ptr.addr);
        while g < ptr.addr + len {
            self.granule_colors.insert(g, recolor);
            g += GRANULE;
        }
    }

    /// Checks an access through a tagged pointer.
    pub fn access(&self, ptr: TaggedPtr, offset: u64, len: u64) -> AdiAccess {
        let lo = ptr.addr + offset;
        let mut g = Self::granule(lo);
        while g < lo + len {
            let mem = self.granule_colors.get(&g).copied().unwrap_or(0);
            if mem != ptr.color {
                return AdiAccess::Mismatch {
                    ptr_color: ptr.color,
                    mem_color: mem,
                };
            }
            g += GRANULE;
        }
        AdiAccess::Ok
    }

    /// Probability that two independently coloured allocations collide
    /// (the paper's "color reuse … can be exploited" — 1/13 with ADI's 13
    /// colours, vs 0 for Califorms where safety does not scale with
    /// allocation count).
    pub fn collision_probability() -> f64 {
        1.0 / f64::from(COLORS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matched_access_passes() {
        let mut m = AdiMachine::new();
        let p = m.allocate(0x1000, 128);
        assert_eq!(m.access(p, 0, 128), AdiAccess::Ok);
    }

    #[test]
    fn uaf_is_trapped_after_recolor() {
        let mut m = AdiMachine::new();
        let p = m.allocate(0x1000, 64);
        m.free(p, 64);
        assert!(matches!(m.access(p, 0, 8), AdiAccess::Mismatch { .. }));
    }

    #[test]
    fn adjacent_object_overflow_is_trapped() {
        let mut m = AdiMachine::new();
        let a = m.allocate(0x1000, 64);
        let _b = m.allocate(0x1040, 64);
        // Overflowing from a into b crosses into a differently coloured
        // granule.
        assert!(matches!(m.access(a, 64, 8), AdiAccess::Mismatch { .. }));
    }

    #[test]
    fn intra_object_overflow_is_invisible() {
        // Both fields share one granule → one colour → no detection. The
        // key limitation vs Califorms.
        let mut m = AdiMachine::new();
        let p = m.allocate(0x1000, 64);
        // "Overflow" from field at offset 0..8 into field at 8..16.
        assert_eq!(m.access(p, 8, 8), AdiAccess::Ok);
    }

    #[test]
    fn colors_wrap_and_collide() {
        let mut m = AdiMachine::new();
        let first = m.allocate(0x10000, 64);
        // Burn through the palette; the 14th allocation reuses colour 1.
        for i in 1..u64::from(COLORS) {
            m.allocate(0x10000 + i * 0x100, 64);
        }
        let reused = m.allocate(0x20000, 64);
        assert_eq!(first.color, reused.color, "palette exhausted → collision");
        assert!((AdiMachine::collision_probability() - 1.0 / 13.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "whole granules")]
    fn unaligned_allocation_panics() {
        AdiMachine::new().allocate(0x1008, 64);
    }
}
