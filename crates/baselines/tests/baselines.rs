//! Integration coverage for the baseline comparison models (REST, SPARC
//! ADI, Intel MPX) and the Tables 4–6 / detection-matrix data, which
//! lagged the rest of the workspace.

use califorms_baselines::adi::{AdiAccess, AdiMachine, COLORS, GRANULE};
use califorms_baselines::comparison::{
    detection_matrix, render_table4, table4, table5, table6, AttackKind, Detection,
};
use califorms_baselines::mpx::{MpxAccess, MpxMachine};
use califorms_baselines::rest::{RestAccess, RestMachine};

// --- REST -------------------------------------------------------------

#[test]
fn rest_granularity_is_the_token_not_the_byte() {
    let mut m = RestMachine::new(64);
    // Arming a single byte arms its whole 64 B token — the granularity
    // loss that motivates Califorms.
    m.arm(0x1020, 1);
    assert!(matches!(m.access(0x1000, 1), RestAccess::Tripped { .. }));
    assert!(matches!(m.access(0x103F, 1), RestAccess::Tripped { .. }));
    assert_eq!(m.access(0x1040, 1), RestAccess::Ok);
}

#[test]
fn rest_disarm_covers_partial_spans() {
    let mut m = RestMachine::new(8);
    m.arm(0x100, 32); // tokens 0x100..0x120
    m.disarm(0x108, 8); // middle token only
    assert!(matches!(m.access(0x100, 8), RestAccess::Tripped { .. }));
    assert_eq!(m.access(0x108, 8), RestAccess::Ok);
    assert!(matches!(m.access(0x110, 8), RestAccess::Tripped { .. }));
}

#[test]
fn rest_access_spanning_into_a_token_reports_its_base() {
    let mut m = RestMachine::new(16);
    m.arm(0x210, 16);
    match m.access(0x208, 16) {
        RestAccess::Tripped { token_base } => assert_eq!(token_base, 0x210),
        other => panic!("expected trip, got {other:?}"),
    }
}

#[test]
fn rest_intra_object_fencing_costs_tokens() {
    let m = RestMachine::new(64);
    // Fencing 7 fields costs 8 × 64 B of dead memory — vs a handful of
    // 1–7 B Califorms spans.
    assert_eq!(m.intra_object_fence_bytes(7), 512);
}

#[test]
#[should_panic(expected = "8-64B")]
fn rest_rejects_non_power_of_two_tokens() {
    RestMachine::new(24);
}

// --- SPARC ADI --------------------------------------------------------

#[test]
fn adi_detects_use_after_free_via_recolour() {
    let mut m = AdiMachine::new();
    let p = m.allocate(0x1000, 128);
    assert_eq!(m.access(p, 0, 128), AdiAccess::Ok);
    m.free(p, 128);
    assert!(matches!(m.access(p, 0, 8), AdiAccess::Mismatch { .. }));
}

#[test]
fn adi_cannot_protect_intra_object_fields() {
    // Both fields share one granule and hence one colour: the overflow
    // from field A into field B is invisible — cache-line granularity.
    let mut m = AdiMachine::new();
    let p = m.allocate(0x2000, GRANULE);
    assert_eq!(m.access(p, 32, 8), AdiAccess::Ok, "field B via A's ptr");
}

#[test]
fn adi_colors_recycle_after_thirteen_allocations() {
    let mut m = AdiMachine::new();
    let first = m.allocate(0x10_000, 64);
    for i in 1..u64::from(COLORS) {
        m.allocate(0x10_000 + i * 64, 64);
    }
    let recycled = m.allocate(0x20_000, 64);
    assert_eq!(
        recycled.color, first.color,
        "13-colour wheel wraps: stale pointers of the same colour collide"
    );
    assert!((AdiMachine::collision_probability() - 1.0 / 13.0).abs() < 1e-12);
}

#[test]
#[should_panic(expected = "whole granules")]
fn adi_rejects_unaligned_allocations() {
    AdiMachine::new().allocate(0x1004, 64);
}

// --- Intel MPX --------------------------------------------------------

#[test]
fn mpx_bounds_check_catches_overflow_and_costs_memory_refs() {
    let mut m = MpxMachine::new();
    m.set_bounds(1, 0x1000, 0x1040);
    assert_eq!(m.access(1, 0x1000, 64), MpxAccess::Ok);
    assert!(matches!(
        m.access(1, 0x103F, 2),
        MpxAccess::BoundViolation { .. }
    ));
    assert_eq!(m.checks, 2);
    assert!(
        m.metadata_memory_refs >= 5,
        "bounds traffic is the 1.7x slowdown mechanism"
    );
}

#[test]
fn mpx_narrowing_gives_intra_object_protection() {
    let mut m = MpxMachine::new();
    m.set_bounds(7, 0x2000, 0x2040);
    m.narrow_bounds(7, 0x2000, 0x2020); // field A only
    assert!(matches!(
        m.access(7, 0x2020, 8),
        MpxAccess::BoundViolation { .. }
    ));
}

#[test]
#[should_panic(expected = "contained")]
fn mpx_narrowing_cannot_widen() {
    let mut m = MpxMachine::new();
    m.set_bounds(7, 0x2000, 0x2040);
    m.narrow_bounds(7, 0x2000, 0x2080);
}

#[test]
fn mpx_drops_bounds_through_uninstrumented_modules() {
    let mut m = MpxMachine::new();
    m.set_bounds(3, 0x3000, 0x3040);
    m.pass_through_unprotected_module(3);
    // The wild access sails through unchecked — compatibility over
    // safety, Table 4's interoperability hazard.
    assert_eq!(m.access(3, 0xDEAD_0000, 4096), MpxAccess::Unchecked);
}

#[test]
fn mpx_has_no_temporal_safety() {
    let mut m = MpxMachine::new();
    m.set_bounds(9, 0x4000, 0x4040);
    m.free(9);
    assert_eq!(
        m.access(9, 0x4000, 8),
        MpxAccess::Ok,
        "stale pointer with stale bounds still passes"
    );
}

// --- Tables 4–6 and the detection matrix ------------------------------

#[test]
fn tables_cover_the_same_proposals_and_include_califorms() {
    let t4 = table4();
    let t5 = table5();
    let t6 = table6();
    assert_eq!(t4.len(), t5.len());
    assert_eq!(t4.len(), t6.len());
    for (r4, (r5, r6)) in t4.iter().zip(t5.iter().zip(t6.iter())) {
        assert_eq!(r4.proposal, r5.proposal);
        assert_eq!(r4.proposal, r6.proposal);
    }
    let cali = t4
        .iter()
        .find(|r| r.proposal.contains("Califorms"))
        .expect("Califorms row present");
    assert_eq!(cali.granularity, "Byte");
}

#[test]
fn detection_matrix_matches_the_paper_claims() {
    let matrix = detection_matrix();
    let get = |scheme: &str, attack: AttackKind| -> Detection {
        matrix
            .iter()
            .find(|(s, _)| *s == scheme)
            .unwrap_or_else(|| panic!("{scheme} missing"))
            .1
            .iter()
            .find(|(a, _)| *a == attack)
            .unwrap()
            .1
    };
    // Califorms catches all three attack classes.
    for attack in AttackKind::ALL {
        assert_eq!(get("Califorms", attack), Detection::Detected);
    }
    // ADI misses intra-object overflows (cache-line granularity);
    // MPX misses use-after-free (no temporal safety).
    assert_eq!(
        get("SPARC ADI", AttackKind::IntraObjectOverflow),
        Detection::Missed
    );
    assert_eq!(
        get("Intel MPX", AttackKind::UseAfterFree),
        Detection::Missed
    );
    // Everyone catches the classic inter-object overflow.
    for (scheme, _) in &matrix {
        assert_eq!(
            get(scheme, AttackKind::InterObjectOverflow),
            Detection::Detected
        );
    }
}

#[test]
fn rendered_table_contains_every_proposal() {
    let rendered = render_table4();
    for row in table4() {
        assert!(
            rendered.contains(row.proposal),
            "{} missing from render",
            row.proposal
        );
    }
}
