//! # califorms-core
//!
//! The core Califorms primitive from *Practical Byte-Granular Memory
//! Blacklisting using Califorms* (Sasaki et al., MICRO 2019).
//!
//! Califorms blacklists memory at **byte** granularity by storing the
//! blacklist metadata *inline* in the data itself ("security bytes"), with
//! different cache-line formats at different levels of the memory hierarchy:
//!
//! * **L1** — [`bitvector::L1Line`]: one metadata bit per byte (8 B per 64 B
//!   line) so hits need no address recalculation ([`bitvector`]). Appendix A
//!   variants with 4 B ([`bitvector4`]) and 1 B ([`bitvector1`]) of metadata
//!   trade latency for storage.
//! * **L2 and beyond** — [`sentinel::L2Line`]: a single *califormed?* bit per
//!   line. The first ≤4 bytes of a califormed line form a header holding the
//!   security-byte count and locations; lines with ≥4 security bytes also
//!   carry a 6-bit **sentinel** value that marks every remaining security
//!   byte ([`sentinel`]).
//! * The **spill** (L1→L2, paper Algorithm 1) and **fill** (L2→L1, paper
//!   Algorithm 2) conversions live in [`convert`], built on the
//!   hardware-style blocks of [`hwlogic`] (6→64 decoders, used-value
//!   vectors, find-first-index).
//!
//! The ISA surface is the [`cform::CformInstruction`] (paper Table 1 K-map)
//! and the privileged [`exception::CaliformsException`], with
//! [`exception::ExceptionMask`] providing the whitelisting that functions
//! like `memcpy` need.
//!
//! ## Canonical representation
//!
//! Throughout this crate a cache line's logical content is the pair
//! *(64 data bytes, 64-bit security mask)*. The crate maintains the paper's
//! zeroing discipline as an invariant: **a security byte's data is always
//! zero** (deallocated regions are zeroed; loads of security bytes return
//! zero to defeat speculative probing). [`line::CaliformedLine`] enforces
//! this canonical form and is what the conversions round-trip through.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitvector;
pub mod bitvector1;
pub mod bitvector4;
pub mod cform;
pub mod convert;
pub mod detmap;
pub mod error;
pub mod exception;
pub mod hwlogic;
pub mod line;
pub mod sentinel;

pub use cform::{CformInstruction, CformOutcome};
pub use convert::{fill, fill_canonical, spill, spill_canonical};
pub use detmap::{LineHasher, LineMap, LineSet};
pub use error::{CoreError, Result};
pub use exception::{AccessKind, CaliformsException, ExceptionKind, ExceptionMask};
pub use line::{range_mask, CaliformedLine, LINE_BYTES};
pub use sentinel::L2Line;

pub use bitvector::L1Line;
