//! Deterministic hash maps for result-bearing state.
//!
//! `std::collections::HashMap`'s default `RandomState` hasher is seeded
//! per process, so its iteration order differs between two runs of the
//! same program. Any map whose contents feed simulated results is one
//! `.iter()` away from leaking that order into stats or memory state and
//! breaking the repo's core invariant — *same seed ⇒ bit-identical
//! results across every core count, quantum size and weave batch*
//! (DESIGN.md §12). Result-bearing crates therefore use [`LineMap`] /
//! [`LineSet`], whose [`LineHasher`] is a pure function of the key: the
//! bucket layout, and hence the iteration order, is a deterministic
//! function of the insertion/removal sequence alone, identical across
//! processes and hosts.
//!
//! This is enforced statically: the `nondet-map` lint in
//! `califorms-analyze` rejects default-hasher `HashMap`/`HashSet` in the
//! result-bearing crates (`core`, `sim`, `alloc`, `oracle`).
//!
//! The hasher originated as the replay-hot-path directory/DRAM hasher in
//! `califorms-sim::hierarchy` (which re-exports these names) and was
//! lifted here so every crate in the workspace can reach it.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A fast, deterministic hasher for line-address keys (multiply-xor over
/// the golden ratio, Fx-style). The directory shards and the DRAM maps
/// sit on the replay miss path, where SipHash's per-lookup cost is pure
/// overhead: keys are internal `u64` line addresses, not attacker-chosen
/// input, so HashDoS resistance buys nothing here — and the fixed seed is
/// what makes iteration order reproducible across processes.
#[derive(Debug, Default, Clone)]
pub struct LineHasher(u64);

impl Hasher for LineHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        let h = (self.0 ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 = h ^ (h >> 32);
    }
}

/// A `HashMap` keyed by line/page address with the deterministic fast
/// hasher. Iteration order is a pure function of the insertion/removal
/// sequence — identical across fresh processes.
pub type LineMap<V> = HashMap<u64, V, BuildHasherDefault<LineHasher>>;

/// The set counterpart of [`LineMap`].
pub type LineSet = HashSet<u64, BuildHasherDefault<LineHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hasher_is_a_pure_function_of_the_key() {
        let hash = |v: u64| {
            let mut h = LineHasher::default();
            h.write_u64(v);
            h.finish()
        };
        assert_eq!(hash(0x1234), hash(0x1234));
        assert_ne!(hash(0x1234), hash(0x1240));
    }

    #[test]
    fn iteration_order_depends_only_on_the_op_sequence() {
        let build = || {
            let mut m: LineMap<u32> = LineMap::default();
            for i in 0..257u64 {
                m.insert(i * 64, i as u32);
            }
            m.remove(&(13 * 64));
            m.keys().copied().collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }
}
