//! Hardware-style combinational blocks used by the spill/fill converters.
//!
//! The paper's Figures 8 and 9 build the L1↔L2 format converters out of a
//! small set of blocks: 6→64 one-hot decoders, an OR-reduction into a
//! *used-values* vector, and *Find-index* blocks (64 shifters plus one
//! comparator) that locate the first set/clear bit. This module models those
//! blocks as pure functions over 64-bit vectors so that
//!
//! 1. the converter in [`crate::convert`] is a direct transcription of the
//!    paper's logic rather than an opaque re-derivation, and
//! 2. the VLSI cost model (`califorms-vlsi`) can count exactly these
//!    structures.

use crate::line::LINE_BYTES;

/// 6→64 one-hot decoder: returns a vector with only bit `value` set.
///
/// `value` is masked to its least significant 6 bits, mirroring the
/// hardware, which only ever sees 6 wires.
#[inline]
pub fn decode6(value: u8) -> u64 {
    1u64 << (value & 0x3F)
}

/// Builds the *used-values* vector of a line: bit `v` is set iff some
/// **normal** byte of the line has `v` as its least significant 6 bits.
///
/// Security bytes are excluded (their decoder outputs are gated by the
/// bitvector metadata): they carry no program data, and excluding them is
/// what guarantees a free pattern exists — with at least one security byte
/// there are at most 63 normal bytes, hence at most 63 used patterns out of
/// 64.
pub fn used_values(data: &[u8; LINE_BYTES], security_mask: u64) -> u64 {
    let mut used = 0u64;
    for (i, &byte) in data.iter().enumerate() {
        if security_mask >> i & 1 == 0 {
            used |= decode6(byte);
        }
    }
    used
}

/// Find-index block: index of the first **zero** bit of `vector`, scanning
/// from bit 0, or `None` if all 64 bits are set.
///
/// The hardware realises this with 64 shift blocks feeding one comparator;
/// here `trailing_ones` is the same function.
#[inline]
pub fn find_first_zero(vector: u64) -> Option<u8> {
    let idx = vector.trailing_ones();
    (idx < 64).then_some(idx as u8)
}

/// Find-index block: index of the first **one** bit of `vector`, or `None`
/// if the vector is all zeros.
#[inline]
pub fn find_first_one(vector: u64) -> Option<u8> {
    let idx = vector.trailing_zeros();
    (idx < 64).then_some(idx as u8)
}

/// Successive-find block: the indices of the first `n` set bits, ascending.
///
/// The spill path (Figure 8, step 8) chains four of these to extract the
/// first four security-byte locations; each stage masks off the bit the
/// previous stage found.
pub fn find_first_n_ones(mut vector: u64, n: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        match find_first_one(vector) {
            Some(idx) => {
                out.push(idx);
                vector &= !(1u64 << idx);
            }
            None => break,
        }
    }
    out
}

/// Chooses the sentinel for a line: the first 6-bit pattern not used by any
/// normal byte (Figure 8's Find-index-of-first-0 over the used-values
/// vector).
///
/// Returns `None` only if every one of the 64 patterns is in use, which
/// cannot happen when the line holds at least one security byte.
pub fn find_sentinel(data: &[u8; LINE_BYTES], security_mask: u64) -> Option<u8> {
    find_first_zero(used_values(data, security_mask))
}

/// The parallel comparator bank of the fill path (Figure 9): bit `i` of the
/// result is set iff byte `i`'s least significant 6 bits equal `sentinel`.
pub fn sentinel_matches(data: &[u8; LINE_BYTES], sentinel: u8) -> u64 {
    let mut matches = 0u64;
    for (i, &byte) in data.iter().enumerate() {
        if byte & 0x3F == sentinel & 0x3F {
            matches |= 1u64 << i;
        }
    }
    matches
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode6_is_one_hot() {
        for v in 0u8..64 {
            assert_eq!(decode6(v).count_ones(), 1);
            assert_eq!(decode6(v).trailing_zeros(), v as u32);
        }
        // Only the low 6 bits participate.
        assert_eq!(decode6(0xFF), decode6(0x3F));
        assert_eq!(decode6(0x40), decode6(0x00));
    }

    #[test]
    fn used_values_ignores_security_bytes() {
        let mut data = [0u8; LINE_BYTES];
        data[0] = 5;
        data[1] = 9;
        let used = used_values(&data, 1 << 1);
        assert_eq!(used, decode6(5) | decode6(0)); // byte 1 excluded; rest are 0
    }

    #[test]
    fn used_values_collapses_on_low_six_bits() {
        let mut data = [0u8; LINE_BYTES];
        data[0] = 0x41; // low 6 bits = 1
        data[1] = 0x01; // low 6 bits = 1
        let used = used_values(&data, !0u64 << 2); // only bytes 0 and 1 normal
        assert_eq!(used, decode6(1));
    }

    #[test]
    fn find_first_zero_finds_gaps() {
        assert_eq!(find_first_zero(0), Some(0));
        assert_eq!(find_first_zero(0b0111), Some(3));
        assert_eq!(find_first_zero(u64::MAX), None);
        assert_eq!(find_first_zero(u64::MAX ^ (1 << 63)), Some(63));
    }

    #[test]
    fn find_first_one_finds_bits() {
        assert_eq!(find_first_one(0), None);
        assert_eq!(find_first_one(0b1000), Some(3));
        assert_eq!(find_first_one(1 << 63), Some(63));
    }

    #[test]
    fn find_first_n_ones_ascends_and_truncates() {
        let v = 1 << 3 | 1 << 17 | 1 << 42;
        assert_eq!(find_first_n_ones(v, 4), vec![3, 17, 42]);
        assert_eq!(find_first_n_ones(v, 2), vec![3, 17]);
        assert_eq!(find_first_n_ones(0, 4), Vec::<u8>::new());
    }

    #[test]
    fn sentinel_always_exists_with_a_security_byte() {
        // Worst case: normal bytes cover 63 distinct low-6 patterns.
        let mut data = [0u8; LINE_BYTES];
        for (i, byte) in data.iter_mut().enumerate().take(63) {
            *byte = i as u8; // patterns 0..=62
        }
        // byte 63 is the security byte
        let mask = 1u64 << 63;
        assert_eq!(find_sentinel(&data, mask), Some(63));
    }

    #[test]
    fn sentinel_matches_compares_low_six_bits() {
        let mut data = [0xFFu8; LINE_BYTES];
        data[2] = 0x2A;
        data[7] = 0x6A; // low 6 bits also 0x2A
        let m = sentinel_matches(&data, 0x2A);
        assert_eq!(m, 1 << 2 | 1 << 7);
    }

    #[test]
    fn no_sentinel_when_all_patterns_used_by_normal_bytes() {
        let mut data = [0u8; LINE_BYTES];
        for (i, byte) in data.iter_mut().enumerate() {
            *byte = i as u8;
        }
        assert_eq!(find_sentinel(&data, 0), None);
    }
}
