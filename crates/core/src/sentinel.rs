//! The L2-and-beyond cache-line format: *califorms-sentinel* (Section 5.2).
//!
//! Beyond the L1, a line carries a single metadata bit (*califormed?* — 1
//! bit per 64 B line, 0.2 % overhead). A califormed line stores its
//! blacklist metadata **inside** the line, in a header occupying the first
//! ≤4 bytes (paper Figure 7):
//!
//! ```text
//! byte 0 bits [1:0]  count code: 00→1, 01→2, 10→3, 11→4 or more
//! then, packed 6 bits at a time (LSB first):
//!   code 00:  Addr0
//!   code 01:  Addr0 Addr1
//!   code 10:  Addr0 Addr1 Addr2
//!   code 11:  Addr0 Addr1 Addr2 Addr3 Sentinel   (exactly 32 bits = 4 B)
//! ```
//!
//! `Addr0..Addr3` are the line offsets of the first (lowest-addressed) four
//! security bytes, ascending. With the `11` code, every *additional*
//! security byte is marked by holding the 6-bit **sentinel** value — a
//! pattern chosen at spill time to differ from the least significant 6 bits
//! of every normal byte. Such a pattern always exists: at least one security
//! byte means at most 63 normal bytes, hence at most 63 of the 64 patterns
//! are in use.
//!
//! The original data of the header bytes is displaced into the listed
//! security-byte slots (which hold no data of their own). The exact
//! displacement rule — a detail the paper leaves implicit — is documented on
//! [`displacement_map`] and is what makes the encoding invertible even when
//! security bytes fall *inside* the header region.
//!
//! Encoding/decoding between this format and the canonical
//! [`CaliformedLine`](crate::line::CaliformedLine) is performed by
//! [`crate::convert::spill`] and [`crate::convert::fill`].

use crate::error::{CoreError, Result};
use crate::line::LINE_BYTES;

/// A cache line as held in the L2 cache and beyond: 64 bytes plus the
/// single *califormed?* metadata bit (stored in spare ECC bits once in
/// DRAM).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L2Line {
    /// Raw line bytes — califormed-format if [`Self::califormed`] is set,
    /// plain data otherwise.
    pub bytes: [u8; LINE_BYTES],
    /// The per-line metadata bit.
    pub califormed: bool,
}

impl L2Line {
    /// A non-califormed line of plain data.
    pub const fn plain(bytes: [u8; LINE_BYTES]) -> Self {
        Self {
            bytes,
            califormed: false,
        }
    }

    /// Decodes this line's header.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::CorruptSentinelHeader`] if the line is not
    /// califormed or the listed addresses are not strictly ascending (the
    /// canonical order the spill hardware emits).
    pub fn header(&self) -> Result<SentinelHeader> {
        if !self.califormed {
            return Err(CoreError::CorruptSentinelHeader {
                what: "line is not califormed",
            });
        }
        SentinelHeader::decode(&self.bytes)
    }
}

/// Number of header bytes used for a given listed-address count (1–4).
///
/// Count 1 needs 2+6=8 bits (1 byte); count 2 needs 14 bits (2 bytes);
/// count 3 needs 20 bits (3 bytes); count 4 needs 2+24+6=32 bits (4 bytes).
pub const fn header_len(listed: usize) -> usize {
    listed
}

/// Decoded califorms-sentinel header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SentinelHeader {
    /// Line offsets of the first `min(n, 4)` security bytes, ascending.
    pub listed: Vec<u8>,
    /// The sentinel pattern, present only when the count code is `11`
    /// (four **or more** security bytes).
    pub sentinel: Option<u8>,
}

impl SentinelHeader {
    /// Encodes a header into the first `listed.len()` bytes of `out`.
    ///
    /// `listed` must hold 1–4 ascending line offsets; `sentinel` must be
    /// `Some` exactly when `listed.len() == 4`.
    ///
    /// # Panics
    ///
    /// Panics on violated preconditions — the spill path constructs its
    /// arguments so they hold by design.
    pub fn encode(listed: &[u8], sentinel: Option<u8>, out: &mut [u8; LINE_BYTES]) {
        assert!(
            (1..=4).contains(&listed.len()),
            "listed address count must be 1..=4"
        );
        assert!(
            listed.windows(2).all(|w| w[0] < w[1]),
            "listed addresses must be strictly ascending"
        );
        assert_eq!(
            sentinel.is_some(),
            listed.len() == 4,
            "sentinel present iff count code is 11"
        );
        let k = header_len(listed.len());
        for b in out.iter_mut().take(k) {
            *b = 0;
        }
        let mut writer = BitWriter::new(out);
        writer.put((listed.len() - 1) as u8, 2);
        for &addr in listed {
            debug_assert!(addr < 64);
            writer.put(addr, 6);
        }
        if let Some(s) = sentinel {
            writer.put(s & 0x3F, 6);
        }
    }

    /// Decodes the header from the first bytes of a califormed line.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::CorruptSentinelHeader`] if the listed addresses
    /// are not strictly ascending.
    pub fn decode(bytes: &[u8; LINE_BYTES]) -> Result<Self> {
        let mut reader = BitReader::new(bytes);
        let code = reader.take(2);
        let count = code as usize + 1;
        let mut listed = Vec::with_capacity(count);
        for _ in 0..count {
            listed.push(reader.take(6));
        }
        if !listed.windows(2).all(|w| w[0] < w[1]) {
            return Err(CoreError::CorruptSentinelHeader {
                what: "listed addresses not strictly ascending",
            });
        }
        let sentinel = (code == 0b11).then(|| reader.take(6));
        Ok(Self { listed, sentinel })
    }

    /// The number of header bytes this header occupies.
    pub fn header_bytes(&self) -> usize {
        header_len(self.listed.len())
    }
}

/// The displacement rule that preserves the header bytes' original data.
///
/// Returns `(source, target)` pairs: original data of header byte `source`
/// is stored at security-byte slot `target` while the line is in sentinel
/// format.
///
/// * *sources* — header byte offsets `0..k` that are **not** themselves
///   security bytes (security bytes carry no data to preserve), ascending;
/// * *targets* — **listed** security-byte slots at offset `≥ k`, ascending.
///
/// The counts always match because the header length `k` equals the listed
/// count `c`, so `|sources| = k − |S ∩ [0,k)| = c − |S ∩ [0,k)| = |targets|`.
/// Restricting targets to *listed* slots keeps displaced data out of the
/// sentinel scan's way on fill.
pub fn displacement_map(listed: &[u8], security_mask: u64) -> Vec<(usize, usize)> {
    let k = header_len(listed.len());
    let sources = (0..k).filter(|&i| security_mask >> i & 1 == 0);
    let targets = listed.iter().map(|&a| a as usize).filter(|&a| a >= k);
    // analyze::allow(hot-path-alloc): at most 4-pair map, allocated only on a califormed spill
    sources.zip(targets).collect()
}

struct BitWriter<'a> {
    out: &'a mut [u8; LINE_BYTES],
    bit: usize,
}

impl<'a> BitWriter<'a> {
    fn new(out: &'a mut [u8; LINE_BYTES]) -> Self {
        Self { out, bit: 0 }
    }

    fn put(&mut self, value: u8, width: usize) {
        for i in 0..width {
            let v = value >> i & 1;
            let byte = self.bit / 8;
            let off = self.bit % 8;
            self.out[byte] = self.out[byte] & !(1 << off) | v << off;
            self.bit += 1;
        }
    }
}

struct BitReader<'a> {
    bytes: &'a [u8; LINE_BYTES],
    bit: usize,
}

impl<'a> BitReader<'a> {
    fn new(bytes: &'a [u8; LINE_BYTES]) -> Self {
        Self { bytes, bit: 0 }
    }

    fn take(&mut self, width: usize) -> u8 {
        let mut value = 0u8;
        for i in 0..width {
            let byte = self.bit / 8;
            let off = self.bit % 8;
            value |= (self.bytes[byte] >> off & 1) << i;
            self.bit += 1;
        }
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trips_all_counts() {
        for count in 1..=4usize {
            let listed: Vec<u8> = (0..count as u8).map(|i| i * 13 + 2).collect();
            let sentinel = (count == 4).then_some(0x2Au8);
            let mut out = [0xEEu8; LINE_BYTES];
            SentinelHeader::encode(&listed, sentinel, &mut out);
            let hdr = SentinelHeader::decode(&out).unwrap();
            assert_eq!(hdr.listed, listed);
            assert_eq!(hdr.sentinel, sentinel);
            assert_eq!(hdr.header_bytes(), count);
            // Bytes beyond the header untouched.
            assert!(out[count..].iter().all(|&b| b == 0xEE));
        }
    }

    #[test]
    fn count_code_occupies_low_two_bits() {
        let mut out = [0u8; LINE_BYTES];
        SentinelHeader::encode(&[7], None, &mut out);
        assert_eq!(out[0] & 0b11, 0b00);
        assert_eq!(out[0] >> 2, 7);
    }

    #[test]
    fn four_security_bytes_pack_exactly_four_bytes() {
        let mut out = [0xFFu8; LINE_BYTES];
        SentinelHeader::encode(&[0, 1, 2, 63], Some(0x3F), &mut out);
        assert_eq!(out[0] & 0b11, 0b11);
        let hdr = SentinelHeader::decode(&out).unwrap();
        assert_eq!(hdr.listed, vec![0, 1, 2, 63]);
        assert_eq!(hdr.sentinel, Some(0x3F));
        assert_eq!(out[4], 0xFF, "byte 4 is data, not header");
    }

    #[test]
    fn decode_rejects_descending_addresses() {
        let mut out = [0u8; LINE_BYTES];
        SentinelHeader::encode(&[3, 9], None, &mut out);
        // Swap the two 6-bit address fields by hand: write 9 then 3.
        let mut swapped = [0u8; LINE_BYTES];
        let mut w = BitWriter::new(&mut swapped);
        w.put(0b01, 2);
        w.put(9, 6);
        w.put(3, 6);
        assert!(SentinelHeader::decode(&swapped).is_err());
    }

    #[test]
    fn displacement_counts_match_by_construction() {
        // Security bytes inside the header region shrink both sides equally.
        let listed = [1u8, 9, 17, 33];
        let mask = listed.iter().fold(0u64, |m, &a| m | 1 << a);
        let map = displacement_map(&listed, mask);
        assert_eq!(map, vec![(0, 9), (2, 17), (3, 33)]);
    }

    #[test]
    fn displacement_empty_when_header_is_all_security() {
        let listed = [0u8, 1, 2, 3];
        let mask = 0b1111u64 | 1 << 63;
        assert!(displacement_map(&listed, mask).is_empty());
    }

    #[test]
    fn displacement_simple_case() {
        // One security byte at 40: header is byte 0, its data moves to 40.
        assert_eq!(displacement_map(&[40], 1 << 40), vec![(0, 40)]);
    }

    #[test]
    #[should_panic(expected = "sentinel present iff")]
    fn encode_rejects_missing_sentinel() {
        let mut out = [0u8; LINE_BYTES];
        SentinelHeader::encode(&[0, 1, 2, 3], None, &mut out);
    }
}
