//! Appendix A variant: *califorms-4B* (paper Figure 14).
//!
//! Instead of a full 8 B bit vector per line, the line is divided into
//! eight 8 B chunks and the per-chunk 8-bit security bit vector is stored
//! **inside one of the chunk's own security bytes**. The additional
//! metadata is 4 bits per chunk — one *chunk califormed?* bit plus a 3-bit
//! address of the byte holding the bit vector — for 4 B (6.25 %) per 64 B
//! line instead of 8 B (12.5 %).
//!
//! The price is an indirection on every access (read the chunk metadata,
//! then the in-chunk bit vector), which the paper's VLSI evaluation
//! (Table 7) measures as a 49 % longer L1 hit delay; `califorms-vlsi`
//! models that cost. Functionally the format is lossless, which this
//! module demonstrates by round-tripping through the canonical line.

use crate::line::{CaliformedLine, LINE_BYTES};

/// Number of 8-byte chunks per line.
pub const CHUNKS: usize = 8;
/// Bytes per chunk.
pub const CHUNK_BYTES: usize = 8;

/// Per-chunk metadata: the *chunk califormed?* bit and the 3-bit location
/// of the byte storing the chunk's bit vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChunkMeta4 {
    /// Whether the chunk contains at least one security byte.
    pub califormed: bool,
    /// Chunk-relative index (0–7) of the security byte holding the chunk's
    /// bit vector; meaningful only when `califormed`.
    pub holder: u8,
}

/// A line in califorms-4B format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L1Line4 {
    /// Line bytes, with each califormed chunk's bit vector stored in-band.
    pub bytes: [u8; LINE_BYTES],
    /// The 4-bit-per-chunk metadata array.
    pub meta: [ChunkMeta4; CHUNKS],
}

impl L1Line4 {
    /// Encodes a canonical line into califorms-4B format.
    pub fn encode(line: &CaliformedLine) -> Self {
        let mut bytes = *line.data();
        let mut meta = [ChunkMeta4::default(); CHUNKS];
        for (chunk, m) in meta.iter_mut().enumerate() {
            let base = chunk * CHUNK_BYTES;
            let chunk_mask = (line.security_mask() >> base & 0xFF) as u8;
            if chunk_mask == 0 {
                continue;
            }
            // The first security byte of the chunk holds the bit vector.
            let holder = chunk_mask.trailing_zeros() as u8;
            bytes[base + holder as usize] = chunk_mask;
            *m = ChunkMeta4 {
                califormed: true,
                holder,
            };
        }
        Self { bytes, meta }
    }

    /// Decodes back to the canonical line.
    pub fn decode(&self) -> CaliformedLine {
        let mut data = self.bytes;
        let mut mask = 0u64;
        for (chunk, m) in self.meta.iter().enumerate() {
            if !m.califormed {
                continue;
            }
            let base = chunk * CHUNK_BYTES;
            let chunk_mask = self.bytes[base + m.holder as usize];
            mask |= (chunk_mask as u64) << base;
            for bit in 0..CHUNK_BYTES {
                if chunk_mask >> bit & 1 == 1 {
                    data[base + bit] = 0;
                }
            }
        }
        CaliformedLine::new(data, mask)
    }

    /// Whether byte `index` is a security byte, resolved through the chunk
    /// indirection exactly as the hardware would on an access.
    pub fn is_security_byte(&self, index: usize) -> bool {
        assert!(index < LINE_BYTES, "byte index out of line");
        let chunk = index / CHUNK_BYTES;
        let m = &self.meta[chunk];
        if !m.califormed {
            return false;
        }
        let bv = self.bytes[chunk * CHUNK_BYTES + m.holder as usize];
        bv >> (index % CHUNK_BYTES) & 1 == 1
    }

    /// Total additional metadata storage in bits (4 per chunk).
    pub const fn metadata_bits() -> usize {
        4 * CHUNKS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(at: &[usize]) -> CaliformedLine {
        let mut data = [0u8; LINE_BYTES];
        for (i, b) in data.iter_mut().enumerate() {
            *b = 0x80u8 | i as u8;
        }
        let mut line = CaliformedLine::from_data(data);
        for &i in at {
            line.set_security_byte(i);
        }
        line
    }

    #[test]
    fn clean_line_round_trips_untouched() {
        let l = line(&[]);
        let enc = L1Line4::encode(&l);
        assert!(enc.meta.iter().all(|m| !m.califormed));
        assert_eq!(enc.bytes, *l.data());
        assert_eq!(enc.decode(), l);
    }

    #[test]
    fn single_security_byte_per_chunk_round_trips() {
        for i in 0..LINE_BYTES {
            let l = line(&[i]);
            let enc = L1Line4::encode(&l);
            assert_eq!(enc.decode(), l, "security byte at {i}");
            assert!(enc.is_security_byte(i));
        }
    }

    #[test]
    fn holder_is_first_security_byte_of_chunk() {
        let l = line(&[10, 12, 15]); // chunk 1
        let enc = L1Line4::encode(&l);
        assert!(enc.meta[1].califormed);
        assert_eq!(enc.meta[1].holder, 2); // 10 % 8
                                           // The holder byte stores the chunk bit vector.
        let bv = enc.bytes[8 + 2];
        assert_eq!(bv, 1 << 2 | 1 << 4 | 1 << 7);
    }

    #[test]
    fn dense_lines_round_trip() {
        let all: Vec<usize> = (0..LINE_BYTES).collect();
        let l = line(&all);
        assert_eq!(L1Line4::encode(&l).decode(), l);

        let every_other: Vec<usize> = (0..LINE_BYTES).step_by(2).collect();
        let l = line(&every_other);
        assert_eq!(L1Line4::encode(&l).decode(), l);
    }

    #[test]
    fn access_check_matches_canonical() {
        let l = line(&[0, 7, 8, 33, 63]);
        let enc = L1Line4::encode(&l);
        for i in 0..LINE_BYTES {
            assert_eq!(enc.is_security_byte(i), l.is_security_byte(i), "byte {i}");
        }
    }

    #[test]
    fn metadata_is_half_a_byte_per_chunk() {
        assert_eq!(L1Line4::metadata_bits(), 32); // 4 B per 64 B line
    }
}
