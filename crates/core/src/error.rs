//! Error types for the core Califorms primitives.

/// Convenience alias for results in this crate.
pub type Result<T> = core::result::Result<T, CoreError>;

/// Errors raised by the core line formats and instruction semantics.
///
/// Variants that correspond to architectural traps (the privileged
/// Califorms exception of Section 4.2) carry enough context for an
/// exception handler to report the faulting byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreError {
    /// A line was constructed whose security byte carried non-zero data,
    /// violating the canonical zeroing discipline.
    NonCanonicalSecurityByte {
        /// Index of the offending byte within the line.
        index: usize,
    },
    /// A store targeted a security byte (raises the Califorms exception
    /// before the store commits).
    StoreToSecurityByte {
        /// Index of the targeted byte within the line.
        index: usize,
    },
    /// A load targeted a security byte (raises the Califorms exception when
    /// the load becomes non-speculative; the load itself returns zero).
    LoadFromSecurityByte {
        /// Index of the targeted byte within the line.
        index: usize,
    },
    /// `CFORM` tried to set a security byte over an existing security byte
    /// (Table 1: Set/Allow on Security Byte ⇒ Exception).
    CformSetOnSecurityByte {
        /// Index of the targeted byte within the line.
        index: usize,
    },
    /// `CFORM` tried to unset a security byte that is a normal byte
    /// (Table 1: Unset/Allow on Regular Byte ⇒ Exception).
    CformUnsetOnNormalByte {
        /// Index of the targeted byte within the line.
        index: usize,
    },
    /// A sentinel value could not be chosen. Unreachable for well-formed
    /// input (≥1 security byte ⇒ ≤63 normal bytes ⇒ a free 6-bit pattern
    /// exists); surfaced instead of panicking so the hardware model can
    /// assert on it.
    NoSentinelAvailable,
    /// An L2 line claimed to be califormed decoded to zero security bytes,
    /// or its header was otherwise internally inconsistent.
    CorruptSentinelHeader {
        /// Human-readable description of the inconsistency.
        what: &'static str,
    },
}

impl core::fmt::Display for CoreError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::NonCanonicalSecurityByte { index } => {
                write!(f, "security byte {index} carries non-zero data")
            }
            Self::StoreToSecurityByte { index } => {
                write!(f, "store to security byte {index}")
            }
            Self::LoadFromSecurityByte { index } => {
                write!(f, "load from security byte {index}")
            }
            Self::CformSetOnSecurityByte { index } => {
                write!(f, "CFORM set on existing security byte {index}")
            }
            Self::CformUnsetOnNormalByte { index } => {
                write!(f, "CFORM unset on normal byte {index}")
            }
            Self::NoSentinelAvailable => {
                write!(f, "no free 6-bit sentinel pattern (corrupt input line)")
            }
            Self::CorruptSentinelHeader { what } => {
                write!(f, "corrupt califorms-sentinel header: {what}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_identify_the_byte() {
        let msg = CoreError::StoreToSecurityByte { index: 7 }.to_string();
        assert!(msg.contains('7'));
        let msg = CoreError::CformSetOnSecurityByte { index: 12 }.to_string();
        assert!(msg.contains("12"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            CoreError::NoSentinelAvailable,
            CoreError::NoSentinelAvailable
        );
        assert_ne!(
            CoreError::LoadFromSecurityByte { index: 1 },
            CoreError::LoadFromSecurityByte { index: 2 }
        );
    }
}
