//! The `CFORM` instruction (Section 4.1, Table 1).
//!
//! `CFORM R1, R2, R3` califorms one 64 B line:
//!
//! * `R1` — cache-line-aligned virtual address of the target line;
//! * `R2` — *attributes* bit vector: bit `i` = 1 requests byte `i` become a
//!   security byte, 0 requests it become a regular byte;
//! * `R3` — *mask* bit vector: bit `i` = 1 allows byte `i`'s state to
//!   change, 0 leaves it untouched (partial metadata updates).
//!
//! Per-byte semantics are the paper's Table 1 K-map:
//!
//! | initial \ (R2, R3)   | X, Disallow | Set, Allow    | Unset, Allow  |
//! |----------------------|-------------|---------------|---------------|
//! | **Regular byte**     | Regular     | Security byte | **Exception** |
//! | **Security byte**    | Security    | **Exception** | Regular byte  |
//!
//! Double-califorming and un-califorming a normal byte both raise the
//! privileged Califorms exception: they indicate allocator state confusion
//! or an attack on the metadata interface.
//!
//! In the pipeline the instruction behaves like a store (write-allocate
//! fetch into L1, then metadata manipulation) — that behaviour lives in the
//! simulator's LSQ; this module implements the architectural state change.

use crate::error::{CoreError, Result};
use crate::line::{CaliformedLine, LINE_BYTES};

/// A decoded `CFORM` instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CformInstruction {
    /// Cache-line-aligned start address of the 64 B target region (R1).
    pub line_addr: u64,
    /// Attribute bits: 1 = set security byte, 0 = unset (R2).
    pub attributes: u64,
    /// Mask bits: 1 = allow the byte's state to change (R3).
    pub mask: u64,
}

/// Result of executing a `CFORM` on a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CformOutcome {
    /// Number of bytes newly turned into security bytes.
    pub bytes_set: u32,
    /// Number of security bytes turned back into regular bytes.
    pub bytes_unset: u32,
}

impl CformInstruction {
    /// Builds a `CFORM`, checking alignment of `line_addr`.
    ///
    /// # Panics
    ///
    /// Panics if `line_addr` is not 64-byte aligned — a misaligned R1 is an
    /// encoding error, not a runtime condition.
    pub fn new(line_addr: u64, attributes: u64, mask: u64) -> Self {
        assert_eq!(
            line_addr % LINE_BYTES as u64,
            0,
            "CFORM target must be cache-line aligned"
        );
        Self {
            line_addr,
            attributes,
            mask,
        }
    }

    /// A `CFORM` that sets exactly the security bytes in `set_mask` (attributes
    /// and mask equal), the common allocation-time encoding.
    pub fn set(line_addr: u64, set_mask: u64) -> Self {
        Self::new(line_addr, set_mask, set_mask)
    }

    /// A `CFORM` that unsets exactly the security bytes in `unset_mask`.
    pub fn unset(line_addr: u64, unset_mask: u64) -> Self {
        Self::new(line_addr, 0, unset_mask)
    }

    /// Executes the instruction against a line, per the Table 1 K-map.
    ///
    /// On success the line's metadata (and the zeroing of affected bytes)
    /// is updated and the outcome counts are returned. On an exception the
    /// line is left **unmodified** — the instruction faults before
    /// committing any of its byte updates, like a store that fails its
    /// permission check.
    ///
    /// # Errors
    ///
    /// * [`CoreError::CformSetOnSecurityByte`] — Set/Allow on a byte that is
    ///   already a security byte;
    /// * [`CoreError::CformUnsetOnNormalByte`] — Unset/Allow on a byte that
    ///   is a regular byte.
    pub fn execute(&self, line: &mut CaliformedLine) -> Result<CformOutcome> {
        // Validation pass: fault precisely, before any state change.
        for i in 0..LINE_BYTES {
            if self.mask >> i & 1 == 0 {
                continue; // Don't-care column: no change, no exception.
            }
            let is_sec = line.is_security_byte(i);
            let set = self.attributes >> i & 1 == 1;
            match (is_sec, set) {
                (true, true) => return Err(CoreError::CformSetOnSecurityByte { index: i }),
                (false, false) => return Err(CoreError::CformUnsetOnNormalByte { index: i }),
                _ => {}
            }
        }
        // Commit pass.
        let mut outcome = CformOutcome {
            bytes_set: 0,
            bytes_unset: 0,
        };
        for i in 0..LINE_BYTES {
            if self.mask >> i & 1 == 0 {
                continue;
            }
            if self.attributes >> i & 1 == 1 {
                line.set_security_byte(i);
                outcome.bytes_set += 1;
            } else {
                line.unset_security_byte(i);
                outcome.bytes_unset += 1;
            }
        }
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_turns_regular_into_security() {
        let mut line = CaliformedLine::from_data([7; LINE_BYTES]);
        let outcome = CformInstruction::set(0, 0b1010).execute(&mut line).unwrap();
        assert_eq!(outcome.bytes_set, 2);
        assert_eq!(outcome.bytes_unset, 0);
        assert!(line.is_security_byte(1) && line.is_security_byte(3));
        assert_eq!(line.read_byte(1), 0, "califormed bytes are zeroed");
        assert_eq!(line.read_byte(0), 7, "masked-off bytes untouched");
    }

    #[test]
    fn unset_turns_security_into_regular() {
        let mut line = CaliformedLine::zeroed();
        line.set_security_byte(5);
        let outcome = CformInstruction::unset(64, 1 << 5)
            .execute(&mut line)
            .unwrap();
        assert_eq!(outcome.bytes_unset, 1);
        assert!(!line.is_security_byte(5));
    }

    #[test]
    fn kmap_set_on_security_is_exception() {
        let mut line = CaliformedLine::zeroed();
        line.set_security_byte(2);
        let err = CformInstruction::set(0, 1 << 2)
            .execute(&mut line)
            .unwrap_err();
        assert_eq!(err, CoreError::CformSetOnSecurityByte { index: 2 });
    }

    #[test]
    fn kmap_unset_on_normal_is_exception() {
        let mut line = CaliformedLine::zeroed();
        let err = CformInstruction::unset(0, 1 << 9)
            .execute(&mut line)
            .unwrap_err();
        assert_eq!(err, CoreError::CformUnsetOnNormalByte { index: 9 });
    }

    #[test]
    fn kmap_dont_care_never_faults() {
        // mask = 0 everywhere: any attribute pattern is a no-op.
        let mut line = CaliformedLine::from_data([3; LINE_BYTES]);
        line.set_security_byte(0);
        let before = line;
        let outcome = CformInstruction::new(0, u64::MAX, 0)
            .execute(&mut line)
            .unwrap();
        assert_eq!(line, before);
        assert_eq!((outcome.bytes_set, outcome.bytes_unset), (0, 0));
    }

    #[test]
    fn kmap_exhaustive_single_byte() {
        // All four (initial, R2) combinations under Allow, per Table 1.
        for (initially_security, set_bit, expect_err) in [
            (false, true, false), // Regular + Set    → Security
            (false, false, true), // Regular + Unset  → Exception
            (true, true, true),   // Security + Set   → Exception
            (true, false, false), // Security + Unset → Regular
        ] {
            let mut line = CaliformedLine::zeroed();
            if initially_security {
                line.set_security_byte(0);
            }
            let insn = CformInstruction::new(0, set_bit as u64, 1);
            assert_eq!(
                insn.execute(&mut line).is_err(),
                expect_err,
                "initial_security={initially_security} set={set_bit}"
            );
        }
    }

    #[test]
    fn faulting_cform_commits_nothing() {
        let mut line = CaliformedLine::from_data([1; LINE_BYTES]);
        line.set_security_byte(8);
        let before = line;
        // Byte 0 would legally be set, but byte 8 faults: atomic failure.
        let insn = CformInstruction::set(0, 1 | 1 << 8);
        assert!(insn.execute(&mut line).is_err());
        assert_eq!(line, before);
    }

    #[test]
    fn partial_update_mixes_set_and_unset() {
        let mut line = CaliformedLine::from_data([2; LINE_BYTES]);
        line.set_security_byte(1);
        // Set byte 0, unset byte 1, leave the rest.
        let insn = CformInstruction::new(0, 0b01, 0b11);
        let outcome = insn.execute(&mut line).unwrap();
        assert_eq!((outcome.bytes_set, outcome.bytes_unset), (1, 1));
        assert!(line.is_security_byte(0));
        assert!(!line.is_security_byte(1));
    }

    #[test]
    #[should_panic(expected = "cache-line aligned")]
    fn misaligned_address_panics() {
        CformInstruction::set(13, 1);
    }
}
