//! The privileged Califorms exception and whitelist masking (Sections 4.2,
//! 6.3).
//!
//! When hardware detects an access to a security byte it raises a
//! **privileged, precise** exception once the instruction becomes
//! non-speculative; the faulting address is passed to the handler in an
//! existing register. Some whitelisted library routines (`memcpy`-style
//! bulk copies, struct assignment) legitimately sweep over security bytes;
//! the OS arms an *exception mask* around those regions of execution, and
//! the handler suppresses — but still counts — masked exceptions.

/// The kind of memory access that faulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A data load. Architecturally it returned zero; the exception is
    /// deferred to commit.
    Load,
    /// A data store. The exception is raised before the store commits.
    Store,
    /// A `CFORM` metadata update that violated the Table 1 K-map.
    Cform,
}

/// Why the exception was raised.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExceptionKind {
    /// A load or store touched a security byte.
    SecurityByteAccess,
    /// `CFORM` tried to set an already-set security byte.
    CformDoubleSet,
    /// `CFORM` tried to unset a regular byte.
    CformUnsetNormal,
}

/// A privileged Califorms exception, as delivered to the handler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CaliformsException {
    /// Faulting byte's virtual address.
    pub fault_addr: u64,
    /// Access that triggered the fault.
    pub access: AccessKind,
    /// Classification of the fault.
    pub kind: ExceptionKind,
    /// Program-counter-like identifier of the faulting instruction, for
    /// reporting (the simulator supplies its instruction sequence number).
    pub pc: u64,
}

/// The exception mask registers used for whitelisting (Section 6.3).
///
/// A privileged store arms the mask before entering a whitelisted function
/// and disarms it after; while armed, Califorms exceptions in the masked
/// address window are suppressed. Masking is scoped — the common whole
/// address-space mask is [`ExceptionMask::push_allow_all`] — and nestable, since
/// whitelisted routines may call each other.
#[derive(Debug, Clone, Default)]
pub struct ExceptionMask {
    /// Stack of armed windows `(lo, hi)`, half-open, innermost last.
    windows: Vec<(u64, u64)>,
    suppressed: u64,
    delivered: u64,
}

impl ExceptionMask {
    /// A disarmed mask: every exception is delivered.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms suppression for faulting addresses in `[lo, hi)`.
    pub fn push_window(&mut self, lo: u64, hi: u64) {
        assert!(lo < hi, "empty whitelist window");
        self.windows.push((lo, hi));
    }

    /// Arms suppression for the whole address space (the paper's
    /// register-writes-around-`memcpy` pattern).
    pub fn push_allow_all(&mut self) {
        self.windows.push((0, u64::MAX));
    }

    /// Disarms the innermost window.
    ///
    /// # Panics
    ///
    /// Panics if no window is armed — unbalanced arm/disarm is a kernel bug.
    pub fn pop_window(&mut self) {
        // analyze::allow(hot-path-unwrap): push/pop are balanced by the engine mask protocol; imbalance is a simulator bug that must stop loudly
        self.windows.pop().expect("unbalanced exception-mask pop");
    }

    /// Whether a fault at `addr` would currently be suppressed.
    pub fn is_suppressed(&self, addr: u64) -> bool {
        self.windows
            .iter()
            .any(|&(lo, hi)| (lo..hi).contains(&addr))
    }

    /// Filters an exception through the mask: returns it for delivery, or
    /// `None` (and counts it) if suppressed.
    pub fn filter(&mut self, exception: CaliformsException) -> Option<CaliformsException> {
        if self.is_suppressed(exception.fault_addr) {
            self.suppressed += 1;
            None
        } else {
            self.delivered += 1;
            Some(exception)
        }
    }

    /// Number of exceptions suppressed so far (whitelisted accesses still
    /// leave an audit trail).
    pub fn suppressed_count(&self) -> u64 {
        self.suppressed
    }

    /// Number of exceptions delivered to the handler so far.
    pub fn delivered_count(&self) -> u64 {
        self.delivered
    }

    /// Whether any window is currently armed.
    pub fn is_armed(&self) -> bool {
        !self.windows.is_empty()
    }

    /// The armed window stack, innermost last (checkpoint serialization).
    pub fn windows(&self) -> &[(u64, u64)] {
        &self.windows
    }

    /// Reconstructs a mask from a serialized snapshot: the window stack
    /// plus the suppression/delivery counters, exactly as captured by
    /// [`Self::windows`], [`Self::suppressed_count`] and
    /// [`Self::delivered_count`]. Empty windows are rejected with an
    /// error (never a panic) so a corrupt checkpoint cannot smuggle one
    /// past [`Self::push_window`]'s assertion.
    pub fn from_parts(
        windows: Vec<(u64, u64)>,
        suppressed: u64,
        delivered: u64,
    ) -> Result<Self, &'static str> {
        if windows.iter().any(|&(lo, hi)| lo >= hi) {
            return Err("empty whitelist window");
        }
        Ok(Self {
            windows,
            suppressed,
            delivered,
        })
    }
}

impl core::fmt::Display for CaliformsException {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "califorms exception: {:?}/{:?} at address {:#x} (pc {:#x})",
            self.access, self.kind, self.fault_addr, self.pc
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exc(addr: u64) -> CaliformsException {
        CaliformsException {
            fault_addr: addr,
            access: AccessKind::Load,
            kind: ExceptionKind::SecurityByteAccess,
            pc: 0x400_000,
        }
    }

    #[test]
    fn disarmed_mask_delivers() {
        let mut mask = ExceptionMask::new();
        assert_eq!(mask.filter(exc(0x1000)), Some(exc(0x1000)));
        assert_eq!(mask.delivered_count(), 1);
        assert_eq!(mask.suppressed_count(), 0);
    }

    #[test]
    fn armed_window_suppresses_in_range_only() {
        let mut mask = ExceptionMask::new();
        mask.push_window(0x1000, 0x2000);
        assert_eq!(mask.filter(exc(0x1800)), None);
        assert_eq!(
            mask.filter(exc(0x2000)),
            Some(exc(0x2000)),
            "hi is exclusive"
        );
        assert_eq!(mask.filter(exc(0x0FFF)), Some(exc(0x0FFF)));
        assert_eq!(mask.suppressed_count(), 1);
        assert_eq!(mask.delivered_count(), 2);
    }

    #[test]
    fn allow_all_suppresses_everything() {
        let mut mask = ExceptionMask::new();
        mask.push_allow_all();
        assert_eq!(mask.filter(exc(0)), None);
        assert_eq!(mask.filter(exc(u64::MAX - 1)), None);
    }

    #[test]
    fn nesting_and_pop_restore_delivery() {
        let mut mask = ExceptionMask::new();
        mask.push_window(0x1000, 0x2000);
        mask.push_window(0x5000, 0x6000);
        assert!(mask.is_suppressed(0x1100));
        assert!(mask.is_suppressed(0x5100));
        mask.pop_window();
        assert!(mask.is_suppressed(0x1100));
        assert!(!mask.is_suppressed(0x5100));
        mask.pop_window();
        assert!(!mask.is_armed());
        assert!(!mask.is_suppressed(0x1100));
    }

    #[test]
    #[should_panic(expected = "unbalanced")]
    fn unbalanced_pop_panics() {
        ExceptionMask::new().pop_window();
    }

    #[test]
    fn display_includes_address() {
        assert!(exc(0xdead40).to_string().contains("0xdead40"));
    }
}
