//! Spill and fill: conversion between the L1 and L2 line formats.
//!
//! [`spill`] is the paper's Algorithm 1 (califorms-bitvector →
//! califorms-sentinel, performed by the L1 controller on eviction);
//! [`fill`] is Algorithm 2 (sentinel → bitvector, on L1 insertion). Both
//! are direct transcriptions of the paper's pseudo-code on top of the
//! hardware blocks in [`crate::hwlogic`], and they are exact inverses:
//! `fill(spill(x)) == x` for every canonical line (property-tested in this
//! crate's test suite).

use crate::bitvector::L1Line;
use crate::error::{CoreError, Result};
use crate::hwlogic;
use crate::line::CaliformedLine;
use crate::sentinel::{displacement_map, L2Line, SentinelHeader};

/// Converts an L1 (bitvector) line to the L2 (sentinel) format —
/// paper Algorithm 1.
///
/// # Errors
///
/// Returns [`CoreError::NoSentinelAvailable`] only on non-canonical input
/// (a line whose 64 normal bytes use all 64 six-bit patterns *and* claims
/// security bytes — impossible for lines built through this crate's API).
pub fn spill(l1: &L1Line) -> Result<L2Line> {
    let line = l1.line();
    // Alg. 1 lines 1–3: OR the metadata; a clean line is evicted as is.
    if !line.is_califormed() {
        return Ok(L2Line::plain(*line.data()));
    }

    let mask = line.security_mask();
    let n = mask.count_ones() as usize;
    let listed_count = n.min(4);

    // Alg. 1 line 8: locations of the first four security bytes
    // (four chained find-index blocks in Figure 8).
    let listed = hwlogic::find_first_n_ones(mask, listed_count);

    // Alg. 1 line 7: scan the low 6 bits of every normal byte and pick the
    // first unused pattern as the sentinel (only needed for the `11` code).
    let sentinel = if n >= 4 {
        Some(hwlogic::find_sentinel(line.data(), mask).ok_or(CoreError::NoSentinelAvailable)?)
    } else {
        None
    };

    let mut bytes = *line.data();

    // Alg. 1 line 9: store the data of the header bytes into the listed
    // security-byte slots (see `displacement_map` for the exact rule).
    for (src, dst) in displacement_map(&listed, mask) {
        bytes[dst] = line.data()[src];
    }

    // Alg. 1 line 10: write the header over the first bytes (Figure 7).
    SentinelHeader::encode(&listed, sentinel, &mut bytes);

    // Alg. 1 line 11: mark every remaining security byte with the sentinel.
    if let Some(s) = sentinel {
        let mut rest = mask;
        for &a in &listed {
            rest &= !(1u64 << a);
        }
        for (i, b) in bytes.iter_mut().enumerate() {
            if rest >> i & 1 == 1 {
                *b = s;
            }
        }
    }

    Ok(L2Line {
        bytes,
        califormed: true,
    })
}

/// Converts an L2 (sentinel) line to the L1 (bitvector) format —
/// paper Algorithm 2.
///
/// # Errors
///
/// Returns [`CoreError::CorruptSentinelHeader`] if the califormed line's
/// header is internally inconsistent (possible only for lines not produced
/// by [`spill`], e.g. fault-injection tests).
pub fn fill(l2: &L2Line) -> Result<L1Line> {
    // Alg. 2 lines 1–3: a clean line gets an all-zero bit vector.
    if !l2.califormed {
        return Ok(L1Line::new(CaliformedLine::from_data(l2.bytes)));
    }

    // Alg. 2 lines 6–7: decode the count code and the listed locations.
    let header = SentinelHeader::decode(&l2.bytes)?;
    let k = header.header_bytes();

    let mut mask = 0u64;
    for &a in &header.listed {
        mask |= 1u64 << a;
    }

    // Alg. 2 line 8: with the `11` code, the sentinel comparator bank marks
    // every byte (outside the header and the listed slots) whose low 6 bits
    // match the sentinel.
    if let Some(s) = header.sentinel {
        let header_region = (1u64 << k) - 1;
        let matches = hwlogic::sentinel_matches(&l2.bytes, s) & !header_region & !mask;
        mask |= matches;
    }

    // Alg. 2 line 9: restore the displaced header-byte data...
    let mut data = l2.bytes;
    for (src, dst) in displacement_map(&header.listed, mask) {
        data[src] = l2.bytes[dst];
    }

    // Alg. 2 line 10: ...and zero every security-byte slot.
    for (i, b) in data.iter_mut().enumerate() {
        if mask >> i & 1 == 1 {
            *b = 0;
        }
    }

    let line =
        CaliformedLine::try_new(data, mask).map_err(|_| CoreError::CorruptSentinelHeader {
            what: "decoded line not canonical",
        })?;
    Ok(L1Line::new(line))
}

/// Infallible [`spill`] for lines owned by a hierarchy: every resident
/// L1 line was built through this crate's canonicalizing API, so the
/// `NoSentinelAvailable` arm is unreachable. The simulator's eviction
/// and coherence paths funnel through this single justified unwrap
/// instead of scattering `.expect()` calls across the hot path.
///
/// # Panics
///
/// Panics on a non-canonical line (fault-injection tests only).
#[must_use]
pub fn spill_canonical(l1: &L1Line) -> L2Line {
    // analyze::allow(hot-path-unwrap): resident L1 lines are canonical by construction; see doc
    spill(l1).expect("canonical lines always spill")
}

/// Infallible [`fill`] for lines produced by [`spill`]: the sentinel
/// header a spill writes always decodes, so the `CorruptSentinelHeader`
/// arm is unreachable for lines the hierarchy itself stored. The
/// counterpart of [`spill_canonical`] on the refill path.
///
/// # Panics
///
/// Panics on a corrupt header (fault-injection tests only).
#[must_use]
pub fn fill_canonical(l2: &L2Line) -> L1Line {
    // analyze::allow(hot-path-unwrap): spill-produced sentinel headers always decode; see doc
    fill(l2).expect("hierarchy lines are well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::line::LINE_BYTES;

    fn caliform(data: [u8; LINE_BYTES], at: &[usize]) -> L1Line {
        let mut line = CaliformedLine::from_data(data);
        for &i in at {
            line.set_security_byte(i);
        }
        L1Line::new(line)
    }

    fn round_trip(l1: &L1Line) -> L1Line {
        fill(&spill(l1).unwrap()).unwrap()
    }

    #[test]
    fn clean_line_spills_as_plain() {
        let l1 = caliform([0xAB; LINE_BYTES], &[]);
        let l2 = spill(&l1).unwrap();
        assert!(!l2.califormed);
        assert_eq!(l2.bytes, [0xAB; LINE_BYTES]);
        assert_eq!(round_trip(&l1), l1);
    }

    #[test]
    fn one_security_byte_round_trips() {
        for at in [0usize, 1, 31, 63] {
            let mut data = [0u8; LINE_BYTES];
            for (i, b) in data.iter_mut().enumerate() {
                *b = (i as u8).wrapping_mul(37).wrapping_add(11);
            }
            let l1 = caliform(data, &[at]);
            assert_eq!(round_trip(&l1), l1, "security byte at {at}");
        }
    }

    #[test]
    fn one_security_byte_header_content() {
        let mut data = [0x77u8; LINE_BYTES];
        data[0] = 0x12;
        let l1 = caliform(data, &[40]);
        let l2 = spill(&l1).unwrap();
        assert!(l2.califormed);
        assert_eq!(
            l2.bytes[0] & 0b11,
            0b00,
            "count code 00 = one security byte"
        );
        assert_eq!(l2.bytes[0] >> 2, 40, "Addr0 in the high six bits");
        assert_eq!(l2.bytes[40], 0x12, "byte 0's data displaced into the slot");
    }

    #[test]
    fn two_and_three_security_bytes_round_trip() {
        let mut data = [0u8; LINE_BYTES];
        for (i, b) in data.iter_mut().enumerate() {
            *b = 0xC0u8.wrapping_add(i as u8);
        }
        for sec in [
            &[5usize, 6][..],
            &[0, 1][..],
            &[1, 2, 3][..],
            &[10, 40, 63][..],
        ] {
            let l1 = caliform(data, sec);
            assert_eq!(round_trip(&l1), l1, "security bytes at {sec:?}");
        }
    }

    #[test]
    fn four_security_bytes_use_sentinel_code() {
        let data = [0x10u8; LINE_BYTES];
        let l1 = caliform(data, &[4, 8, 15, 16]);
        let l2 = spill(&l1).unwrap();
        assert_eq!(l2.bytes[0] & 0b11, 0b11);
        assert_eq!(round_trip(&l1), l1);
    }

    #[test]
    fn many_security_bytes_round_trip() {
        let mut data = [0u8; LINE_BYTES];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i as u8).wrapping_mul(3);
        }
        let sec: Vec<usize> = (0..LINE_BYTES).step_by(3).collect();
        let l1 = caliform(data, &sec);
        assert_eq!(round_trip(&l1), l1);
    }

    #[test]
    fn fully_califormed_line_round_trips() {
        let l1 = caliform([0u8; LINE_BYTES], &(0..LINE_BYTES).collect::<Vec<_>>());
        let l2 = spill(&l1).unwrap();
        assert!(l2.califormed);
        assert_eq!(round_trip(&l1), l1);
    }

    #[test]
    fn security_bytes_inside_header_region_round_trip() {
        // The tricky invertibility case: security bytes at offsets < 4 with
        // the `11` count code.
        let mut data = [0u8; LINE_BYTES];
        for (i, b) in data.iter_mut().enumerate() {
            *b = 0xA0u8.wrapping_add(i as u8);
        }
        for sec in [
            &[0usize, 9, 17, 33][..],
            &[1, 9, 17, 33][..],
            &[0, 1, 2, 3][..],
            &[0, 1, 2, 3, 63][..],
            &[3, 4, 5, 6, 7][..],
            &[0, 2, 40, 41, 42, 43][..],
        ] {
            let l1 = caliform(data, sec);
            assert_eq!(round_trip(&l1), l1, "security bytes at {sec:?}");
        }
    }

    #[test]
    fn sentinel_absent_from_normal_bytes() {
        let mut data = [0u8; LINE_BYTES];
        for (i, b) in data.iter_mut().enumerate() {
            *b = i as u8; // use up patterns 0..63 except where security sits
        }
        let sec: Vec<usize> = vec![7, 21, 35, 49, 63];
        let l1 = caliform(data, &sec);
        let l2 = spill(&l1).unwrap();
        let header = l2.header().unwrap();
        let s = header.sentinel.unwrap();
        // The sentinel must differ from the low-6 bits of every normal byte
        // of the *original* line.
        for i in l1.line().normal_byte_indices() {
            assert_ne!(l1.line().data()[i] & 0x3F, s);
        }
        assert_eq!(round_trip(&l1), l1);
    }

    #[test]
    fn critical_word_first_header_is_in_first_four_bytes() {
        // Section 5.2: security byte locations retrievable from the first 4B.
        let l1 = caliform([0x42; LINE_BYTES], &[10, 20, 30]);
        let l2 = spill(&l1).unwrap();
        let mut first4 = [0u8; LINE_BYTES];
        first4[..4].copy_from_slice(&l2.bytes[..4]);
        let hdr = SentinelHeader::decode(&first4).unwrap();
        assert_eq!(hdr.listed, vec![10, 20, 30]);
    }

    #[test]
    fn fill_detects_corrupt_header() {
        let mut bytes = [0u8; LINE_BYTES];
        // Count code 01 with addresses 9 then 3 (descending) is corrupt.
        bytes[0] = 0b01 | 9 << 2;
        bytes[1] = 3; // Addr1 = 3 in bits 8..14 → low bits of byte 1
        let l2 = L2Line {
            bytes,
            califormed: true,
        };
        assert!(matches!(
            fill(&l2),
            Err(CoreError::CorruptSentinelHeader { .. })
        ));
    }

    #[test]
    fn exhaustive_single_and_pair_positions() {
        let mut data = [0u8; LINE_BYTES];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i as u8) ^ 0x5A;
        }
        for i in 0..LINE_BYTES {
            let l1 = caliform(data, &[i]);
            assert_eq!(round_trip(&l1), l1, "single at {i}");
        }
        for i in 0..LINE_BYTES {
            for j in (i + 1)..LINE_BYTES {
                let l1 = caliform(data, &[i, j]);
                assert_eq!(round_trip(&l1), l1, "pair at {i},{j}");
            }
        }
    }
}
