//! Canonical representation of a 64-byte cache line with security bytes.
//!
//! [`CaliformedLine`] is the *logical* content every physical format
//! ([`crate::bitvector`], [`crate::sentinel`], …) encodes: 64 data bytes plus
//! a 64-bit mask marking which bytes are security (blacklisted) bytes.
//!
//! The type enforces the paper's zeroing discipline as a structural
//! invariant: data under a security byte is always zero. This matches the
//! runtime behaviour (deallocated regions are zeroed before being
//! califormed, and loads of security bytes architecturally return zero) and
//! makes the spill/fill round-trip an exact identity.

use crate::error::{CoreError, Result};

/// Number of data bytes in a cache line (the paper's fixed 64 B geometry).
pub const LINE_BYTES: usize = 64;

/// Mask with bits `offset..offset + len` set — the line-relative byte range
/// of an access, as the hardware's comparator bank would form it.
///
/// Callers guarantee `offset + len <= 64` (the cache controller splits
/// line-crossing accesses first); `len == 0` yields the empty mask.
#[inline]
pub const fn range_mask(offset: usize, len: usize) -> u64 {
    if len == 0 {
        return 0;
    }
    let width = if len >= 64 {
        u64::MAX
    } else {
        (1u64 << len) - 1
    };
    width << offset
}

/// A 64-byte cache line in canonical *(data, security-mask)* form.
///
/// Bit `i` of [`security_mask`](Self::security_mask) set means byte `i` is a
/// security byte; its data byte is guaranteed to be zero.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct CaliformedLine {
    data: [u8; LINE_BYTES],
    mask: u64,
}

impl CaliformedLine {
    /// A line of all-zero data with no security bytes.
    pub const fn zeroed() -> Self {
        Self {
            data: [0; LINE_BYTES],
            mask: 0,
        }
    }

    /// Creates a line from raw data with no security bytes.
    pub const fn from_data(data: [u8; LINE_BYTES]) -> Self {
        Self { data, mask: 0 }
    }

    /// Creates a line from data and a security mask.
    ///
    /// Data bytes under the mask are forced to zero (canonicalisation); use
    /// [`try_new`](Self::try_new) to reject non-canonical input instead.
    pub fn new(mut data: [u8; LINE_BYTES], mask: u64) -> Self {
        for (i, byte) in data.iter_mut().enumerate() {
            if mask >> i & 1 == 1 {
                *byte = 0;
            }
        }
        Self { data, mask }
    }

    /// Creates a line from data and a security mask, rejecting input whose
    /// security bytes carry non-zero data.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NonCanonicalSecurityByte`] naming the first
    /// offending byte.
    pub fn try_new(data: [u8; LINE_BYTES], mask: u64) -> Result<Self> {
        for (i, &byte) in data.iter().enumerate() {
            if mask >> i & 1 == 1 && byte != 0 {
                return Err(CoreError::NonCanonicalSecurityByte { index: i });
            }
        }
        Ok(Self { data, mask })
    }

    /// The 64 data bytes.
    pub const fn data(&self) -> &[u8; LINE_BYTES] {
        &self.data
    }

    /// The security mask (bit `i` ⇒ byte `i` is a security byte).
    pub const fn security_mask(&self) -> u64 {
        self.mask
    }

    /// Whether the line contains at least one security byte.
    pub const fn is_califormed(&self) -> bool {
        self.mask != 0
    }

    /// Number of security bytes in the line.
    pub const fn security_byte_count(&self) -> u32 {
        self.mask.count_ones()
    }

    /// Whether byte `index` is a security byte.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 64`.
    pub fn is_security_byte(&self, index: usize) -> bool {
        assert!(index < LINE_BYTES, "byte index out of line");
        self.mask >> index & 1 == 1
    }

    /// Architectural read of byte `index`.
    ///
    /// Security bytes read as zero by construction, which is exactly the
    /// value the hardware returns to speculative loads (Section 5.1).
    pub fn read_byte(&self, index: usize) -> u8 {
        assert!(index < LINE_BYTES, "byte index out of line");
        self.data[index]
    }

    /// Writes a data byte.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::StoreToSecurityByte`] if byte `index` is
    /// blacklisted — the situation in which the pipeline raises the
    /// privileged Califorms exception before the store commits.
    pub fn write_byte(&mut self, index: usize, value: u8) -> Result<()> {
        assert!(index < LINE_BYTES, "byte index out of line");
        if self.is_security_byte(index) {
            return Err(CoreError::StoreToSecurityByte { index });
        }
        self.data[index] = value;
        Ok(())
    }

    /// Writes `bytes` starting at line offset `offset` in one bulk copy.
    ///
    /// The security check is a single AND against the range mask (the
    /// hardware checks all bytes in parallel; Section 5.1) instead of a
    /// per-byte scan, and the copy is a `memcpy` — the replay hot path
    /// relies on this being O(1)-check + bulk-copy.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::StoreToSecurityByte`] naming the first
    /// blacklisted byte in range; the line is left unchanged.
    ///
    /// # Panics
    ///
    /// Panics if the write overruns the line (`offset + bytes.len() > 64`).
    pub fn write_bytes(&mut self, offset: usize, bytes: &[u8]) -> Result<()> {
        let len = bytes.len();
        assert!(
            offset + len <= LINE_BYTES,
            "access crosses the line boundary"
        );
        let violating = self.mask & range_mask(offset, len);
        if violating != 0 {
            return Err(CoreError::StoreToSecurityByte {
                index: violating.trailing_zeros() as usize,
            });
        }
        self.data[offset..offset + len].copy_from_slice(bytes);
        Ok(())
    }

    /// Marks byte `index` as a security byte, zeroing its data.
    ///
    /// This is the raw state change; the checked ISA-level operation with the
    /// Table 1 K-map semantics is [`crate::cform::CformInstruction`].
    pub fn set_security_byte(&mut self, index: usize) {
        assert!(index < LINE_BYTES, "byte index out of line");
        self.mask |= 1 << index;
        self.data[index] = 0;
    }

    /// Clears the security marking of byte `index`; the byte becomes a
    /// normal zero byte (regions are zeroed on (de)califorming).
    pub fn unset_security_byte(&mut self, index: usize) {
        assert!(index < LINE_BYTES, "byte index out of line");
        self.mask &= !(1 << index);
        self.data[index] = 0;
    }

    /// Iterator over the indices of security bytes, ascending.
    pub fn security_byte_indices(&self) -> impl Iterator<Item = usize> + '_ {
        (0..LINE_BYTES).filter(|&i| self.is_security_byte(i))
    }

    /// Iterator over the indices of normal (non-security) bytes, ascending.
    pub fn normal_byte_indices(&self) -> impl Iterator<Item = usize> + '_ {
        (0..LINE_BYTES).filter(|&i| !self.is_security_byte(i))
    }
}

impl Default for CaliformedLine {
    fn default() -> Self {
        Self::zeroed()
    }
}

impl core::fmt::Debug for CaliformedLine {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "CaliformedLine {{ mask: {:#018x}, data: [", self.mask)?;
        for (i, b) in self.data.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            if self.is_security_byte(i) {
                write!(f, "**")?;
            } else {
                write!(f, "{b:02x}")?;
            }
        }
        write!(f, "] }}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_line_has_no_security_bytes() {
        let line = CaliformedLine::zeroed();
        assert!(!line.is_califormed());
        assert_eq!(line.security_byte_count(), 0);
        assert_eq!(line.data(), &[0u8; LINE_BYTES]);
    }

    #[test]
    fn new_canonicalises_security_data_to_zero() {
        let mut data = [0xAAu8; LINE_BYTES];
        data[5] = 0x55;
        let line = CaliformedLine::new(data, 1 << 5 | 1 << 6);
        assert_eq!(line.read_byte(5), 0);
        assert_eq!(line.read_byte(6), 0);
        assert_eq!(line.read_byte(7), 0xAA);
    }

    #[test]
    fn try_new_rejects_non_canonical() {
        let mut data = [0u8; LINE_BYTES];
        data[3] = 1;
        let err = CaliformedLine::try_new(data, 1 << 3).unwrap_err();
        assert!(matches!(
            err,
            CoreError::NonCanonicalSecurityByte { index: 3 }
        ));
    }

    #[test]
    fn try_new_accepts_canonical() {
        let mut data = [0xFFu8; LINE_BYTES];
        data[10] = 0;
        let line = CaliformedLine::try_new(data, 1 << 10).unwrap();
        assert!(line.is_security_byte(10));
    }

    #[test]
    fn write_to_security_byte_is_rejected() {
        let mut line = CaliformedLine::zeroed();
        line.set_security_byte(9);
        let err = line.write_byte(9, 0x42).unwrap_err();
        assert!(matches!(err, CoreError::StoreToSecurityByte { index: 9 }));
        assert_eq!(line.read_byte(9), 0);
    }

    #[test]
    fn write_to_normal_byte_succeeds() {
        let mut line = CaliformedLine::zeroed();
        line.write_byte(0, 0x42).unwrap();
        assert_eq!(line.read_byte(0), 0x42);
    }

    #[test]
    fn set_then_unset_round_trips_to_zeroed_byte() {
        let mut line = CaliformedLine::from_data([0x11; LINE_BYTES]);
        line.set_security_byte(20);
        assert!(line.is_security_byte(20));
        assert_eq!(line.read_byte(20), 0);
        line.unset_security_byte(20);
        assert!(!line.is_security_byte(20));
        assert_eq!(line.read_byte(20), 0, "unset bytes come back zeroed");
    }

    #[test]
    fn index_iterators_partition_the_line() {
        let mut line = CaliformedLine::zeroed();
        line.set_security_byte(0);
        line.set_security_byte(63);
        let sec: Vec<_> = line.security_byte_indices().collect();
        let normal: Vec<_> = line.normal_byte_indices().collect();
        assert_eq!(sec, vec![0, 63]);
        assert_eq!(normal.len(), 62);
        assert!(!normal.contains(&0) && !normal.contains(&63));
    }

    #[test]
    #[should_panic(expected = "byte index out of line")]
    fn out_of_range_read_panics() {
        CaliformedLine::zeroed().read_byte(64);
    }
}
