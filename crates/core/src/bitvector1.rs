//! Appendix A variant: *califorms-1B* (paper Figure 15).
//!
//! Like [`crate::bitvector4`] the line is split into eight 8 B chunks, but
//! the chunk's bit vector always lives in a **fixed location** — the
//! chunk's 0th ("header") byte — eliminating the 3-bit holder address. The
//! additional metadata is a single *chunk califormed?* bit per chunk: 1 B
//! (1.56 %) per 64 B line.
//!
//! If the header byte is itself a security byte, nothing else is needed.
//! Otherwise the header byte's original value is displaced into the
//! chunk's **last** security byte. The fixed header location makes the
//! lookup faster than califorms-4B (22 % vs 49 % extra L1 delay in the
//! paper's Table 7) at the same functional power, which is why the paper
//! recommends this variant for area-constrained embedded deployments.

use crate::line::{CaliformedLine, LINE_BYTES};

/// Number of 8-byte chunks per line.
pub const CHUNKS: usize = 8;
/// Bytes per chunk.
pub const CHUNK_BYTES: usize = 8;

/// A line in califorms-1B format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L1Line1 {
    /// Line bytes; califormed chunks carry their bit vector in byte 0.
    pub bytes: [u8; LINE_BYTES],
    /// Bit `c` set ⇒ chunk `c` is califormed. The whole per-line metadata.
    pub chunk_mask: u8,
}

impl L1Line1 {
    /// Encodes a canonical line into califorms-1B format.
    pub fn encode(line: &CaliformedLine) -> Self {
        let mut bytes = *line.data();
        let mut chunk_mask = 0u8;
        for chunk in 0..CHUNKS {
            let base = chunk * CHUNK_BYTES;
            let bv = (line.security_mask() >> base & 0xFF) as u8;
            if bv == 0 {
                continue;
            }
            chunk_mask |= 1 << chunk;
            if bv & 1 == 0 {
                // Header byte is normal data: displace it into the last
                // security byte of the chunk.
                let last = 7 - bv.leading_zeros() as usize;
                bytes[base + last] = bytes[base];
            }
            bytes[base] = bv;
        }
        Self { bytes, chunk_mask }
    }

    /// Decodes back to the canonical line.
    pub fn decode(&self) -> CaliformedLine {
        let mut data = self.bytes;
        let mut mask = 0u64;
        for chunk in 0..CHUNKS {
            if self.chunk_mask >> chunk & 1 == 0 {
                continue;
            }
            let base = chunk * CHUNK_BYTES;
            let bv = self.bytes[base];
            mask |= (bv as u64) << base;
            if bv & 1 == 0 {
                // Restore the displaced header byte from the last security
                // byte before zeroing the security bytes.
                let last = 7 - bv.leading_zeros() as usize;
                data[base] = self.bytes[base + last];
            }
            for bit in 0..CHUNK_BYTES {
                if bv >> bit & 1 == 1 {
                    data[base + bit] = 0;
                }
            }
        }
        CaliformedLine::new(data, mask)
    }

    /// Whether byte `index` is a security byte, resolved through the fixed
    /// header-byte lookup.
    pub fn is_security_byte(&self, index: usize) -> bool {
        assert!(index < LINE_BYTES, "byte index out of line");
        let chunk = index / CHUNK_BYTES;
        if self.chunk_mask >> chunk & 1 == 0 {
            return false;
        }
        let bv = self.bytes[chunk * CHUNK_BYTES];
        bv >> (index % CHUNK_BYTES) & 1 == 1
    }

    /// Total additional metadata storage in bits (1 per chunk).
    pub const fn metadata_bits() -> usize {
        CHUNKS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(at: &[usize]) -> CaliformedLine {
        let mut data = [0u8; LINE_BYTES];
        for (i, b) in data.iter_mut().enumerate() {
            *b = 0x40u8 | i as u8;
        }
        let mut line = CaliformedLine::from_data(data);
        for &i in at {
            line.set_security_byte(i);
        }
        line
    }

    #[test]
    fn clean_line_round_trips_untouched() {
        let l = line(&[]);
        let enc = L1Line1::encode(&l);
        assert_eq!(enc.chunk_mask, 0);
        assert_eq!(enc.bytes, *l.data());
        assert_eq!(enc.decode(), l);
    }

    #[test]
    fn header_byte_as_security_byte_needs_no_displacement() {
        let l = line(&[8]); // chunk 1, header position
        let enc = L1Line1::encode(&l);
        assert_eq!(enc.chunk_mask, 0b10);
        assert_eq!(enc.bytes[8], 0b1, "bit vector in the header byte");
        assert_eq!(enc.decode(), l);
    }

    #[test]
    fn normal_header_byte_is_displaced_to_last_security_byte() {
        let l = line(&[10, 12]); // chunk 1; header (byte 8) is normal
        let enc = L1Line1::encode(&l);
        // Original byte 8 value displaced to chunk's last security byte (12).
        assert_eq!(enc.bytes[12], 0x40 | 8);
        assert_eq!(enc.bytes[8], 1 << 2 | 1 << 4);
        assert_eq!(enc.decode(), l);
    }

    #[test]
    fn every_single_position_round_trips() {
        for i in 0..LINE_BYTES {
            let l = line(&[i]);
            let enc = L1Line1::encode(&l);
            assert_eq!(enc.decode(), l, "security byte at {i}");
            assert!(enc.is_security_byte(i));
        }
    }

    #[test]
    fn dense_and_paired_patterns_round_trip() {
        let all: Vec<usize> = (0..LINE_BYTES).collect();
        assert_eq!(L1Line1::encode(&line(&all)).decode(), line(&all));
        for i in 0..LINE_BYTES {
            for j in (i + 1)..LINE_BYTES {
                let l = line(&[i, j]);
                assert_eq!(L1Line1::encode(&l).decode(), l, "pair {i},{j}");
            }
        }
    }

    #[test]
    fn access_check_matches_canonical() {
        let l = line(&[1, 8, 9, 23, 56, 63]);
        let enc = L1Line1::encode(&l);
        for i in 0..LINE_BYTES {
            assert_eq!(enc.is_security_byte(i), l.is_security_byte(i), "byte {i}");
        }
    }

    #[test]
    fn metadata_is_one_bit_per_chunk() {
        assert_eq!(L1Line1::metadata_bits(), 8); // 1 B per 64 B line
    }
}
