//! The L1 cache-line format: *califorms-bitvector* (Section 5.1).
//!
//! The L1 keeps one metadata bit per data byte (an 8 B bit vector per 64 B
//! line, 12.5 % storage overhead) so that loads and stores that hit in the
//! L1 never need address recalculation: the metadata array is looked up in
//! parallel with the tag array (paper Figure 6) and the *Califorms checker*
//! decides, per byte, whether the access touches a security byte.
//!
//! Access semantics (Section 5.1):
//!
//! * a **load** of a security byte returns the predetermined value **zero**
//!   (defeating speculative-disclosure side channels) and records a
//!   privileged exception to be raised when the load becomes
//!   non-speculative;
//! * a **store** to a security byte raises the exception before committing
//!   and leaves memory unchanged.
//!
//! [`L1Line`] models the line held in the L1 data array together with its
//! bit vector; [`L1AccessResult`] is what the checker hands the pipeline.

use crate::error::Result;
use crate::line::{CaliformedLine, LINE_BYTES};

/// A cache line in L1 *califorms-bitvector* format: 64 data bytes plus a
/// 64-bit security bit vector.
///
/// This is a thin, format-specific view over the canonical
/// [`CaliformedLine`]; the conversion is free because the L1 format *is*
/// the canonical format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L1Line {
    line: CaliformedLine,
}

/// Result of a checked L1 data access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct L1AccessResult {
    /// Bytes returned to the pipeline (zeros in security-byte positions).
    pub data: Vec<u8>,
    /// Whether the access touched at least one security byte, i.e. whether
    /// a privileged Califorms exception must be raised at commit.
    pub violation: bool,
    /// Bit `i` set iff accessed byte `i` (line-relative) was a security byte.
    pub violating_bytes: u64,
}

impl L1Line {
    /// Wraps a canonical line in the L1 format.
    pub const fn new(line: CaliformedLine) -> Self {
        Self { line }
    }

    /// A line of zeros with no security bytes.
    pub const fn zeroed() -> Self {
        Self {
            line: CaliformedLine::zeroed(),
        }
    }

    /// The canonical line content.
    pub const fn line(&self) -> &CaliformedLine {
        &self.line
    }

    /// Mutable access to the canonical line content.
    pub fn line_mut(&mut self) -> &mut CaliformedLine {
        &mut self.line
    }

    /// Consumes the view, returning the canonical line.
    pub const fn into_line(self) -> CaliformedLine {
        self.line
    }

    /// The security bit vector (the L1 metadata array entry).
    pub const fn bitvector(&self) -> u64 {
        self.line.security_mask()
    }

    /// Checked load of `len` bytes starting at line offset `offset`.
    ///
    /// Returns the data (zeros where security bytes sit) plus the violation
    /// information. Never fails: per the paper the load *completes* with a
    /// predetermined value and the exception is deferred to commit.
    ///
    /// # Panics
    ///
    /// Panics if the access overruns the line (`offset + len > 64`); the
    /// cache controller splits line-crossing accesses before they get here.
    pub fn load(&self, offset: usize, len: usize) -> L1AccessResult {
        assert!(
            offset + len <= LINE_BYTES,
            "access crosses the line boundary"
        );
        // One shifted AND against the bit vector finds every violating
        // byte at once (the checker's parallel comparator bank), and the
        // canonical-line invariant — data under a security byte is zero —
        // lets the data copy be a straight memcpy.
        let violating = if len == 0 {
            0
        } else {
            (self.line.security_mask() >> offset) & crate::line::range_mask(0, len)
        };
        L1AccessResult {
            data: self.line.data()[offset..offset + len].to_vec(),
            violation: violating != 0,
            violating_bytes: violating,
        }
    }

    /// Checked store of `bytes` starting at line offset `offset`.
    ///
    /// If any targeted byte is a security byte the store is suppressed
    /// entirely (it would never commit) and the first offending byte is
    /// reported.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::StoreToSecurityByte`] on a violation.
    ///
    /// # Panics
    ///
    /// Panics if the access overruns the line.
    pub fn store(&mut self, offset: usize, bytes: &[u8]) -> Result<()> {
        self.line.write_bytes(offset, bytes)
    }
}

impl From<CaliformedLine> for L1Line {
    fn from(line: CaliformedLine) -> Self {
        Self::new(line)
    }
}

impl From<L1Line> for CaliformedLine {
    fn from(l1: L1Line) -> Self {
        l1.into_line()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::CoreError;

    fn line_with_security(at: &[usize]) -> L1Line {
        let mut line = CaliformedLine::from_data([0x5A; LINE_BYTES]);
        for &i in at {
            line.set_security_byte(i);
        }
        L1Line::new(line)
    }

    #[test]
    fn clean_load_returns_data_without_violation() {
        let l1 = line_with_security(&[]);
        let r = l1.load(8, 8);
        assert!(!r.violation);
        assert_eq!(r.data, vec![0x5A; 8]);
        assert_eq!(r.violating_bytes, 0);
    }

    #[test]
    fn load_of_security_byte_returns_zero_and_flags() {
        let l1 = line_with_security(&[10]);
        let r = l1.load(8, 4);
        assert!(r.violation);
        assert_eq!(r.data, vec![0x5A, 0x5A, 0x00, 0x5A]);
        assert_eq!(r.violating_bytes, 0b0100);
    }

    #[test]
    fn store_over_security_byte_is_suppressed_entirely() {
        let mut l1 = line_with_security(&[17]);
        let err = l1.store(16, &[1, 2, 3, 4]).unwrap_err();
        assert_eq!(err, CoreError::StoreToSecurityByte { index: 17 });
        // Nothing committed, not even the non-violating bytes.
        assert_eq!(l1.load(16, 1).data, vec![0x5A]);
    }

    #[test]
    fn clean_store_commits() {
        let mut l1 = line_with_security(&[0]);
        l1.store(1, &[9, 8, 7]).unwrap();
        assert_eq!(l1.load(1, 3).data, vec![9, 8, 7]);
    }

    #[test]
    fn bitvector_tracks_mask() {
        let l1 = line_with_security(&[0, 63]);
        assert_eq!(l1.bitvector(), 1 | 1 << 63);
    }

    #[test]
    #[should_panic(expected = "crosses the line boundary")]
    fn line_crossing_access_panics() {
        line_with_security(&[]).load(60, 8);
    }

    #[test]
    fn whole_line_load_flags_every_security_byte() {
        let l1 = line_with_security(&[0, 1, 62]);
        let r = l1.load(0, LINE_BYTES);
        assert_eq!(r.violating_bytes, 0b11 | 1 << 62);
    }
}
