//! Fault-injection robustness: the fill path receives whatever the L2
//! hands it. Corrupt (attacker-crafted or bit-flipped) califormed lines
//! must produce an error or a valid line — never a panic, and never a
//! non-canonical line.

use califorms_core::convert::fill;
use califorms_core::line::LINE_BYTES;
use califorms_core::L2Line;
use proptest::prelude::*;

proptest! {
    /// Arbitrary bytes with the califormed bit set: fill either decodes a
    /// canonical line or reports a corrupt header — total function.
    #[test]
    fn fill_is_total_on_arbitrary_califormed_lines(
        half in proptest::array::uniform32(any::<u8>()),
        salt in any::<u8>(),
    ) {
        let mut bytes = [0u8; LINE_BYTES];
        for i in 0..LINE_BYTES {
            bytes[i] = half[i % 32].wrapping_add(i as u8).wrapping_mul(salt | 1);
        }
        let l2 = L2Line { bytes, califormed: true };
        // A rejected corrupt header (Err) is acceptable; a decode must be
        // canonical: security bytes zero.
        if let Ok(l1) = fill(&l2) {
            let line = l1.line();
            for i in line.security_byte_indices() {
                prop_assert_eq!(line.data()[i], 0);
            }
            prop_assert!(line.is_califormed(), "califormed bit implies >=1 security byte");
        }
    }

    /// Single bit flips in a legitimately spilled line: fill must stay
    /// total (the decode may differ — ECC is DRAM's job — but no panic,
    /// no non-canonical output).
    #[test]
    fn fill_survives_single_bit_flips(
        sec_mask in any::<u64>(),
        flip_byte in 0usize..LINE_BYTES,
        flip_bit in 0u8..8,
    ) {
        prop_assume!(sec_mask != 0);
        let mut data = [0u8; LINE_BYTES];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i as u8).wrapping_mul(73).wrapping_add(29);
        }
        let line = califorms_core::CaliformedLine::new(data, sec_mask);
        let spilled = califorms_core::spill(&califorms_core::L1Line::new(line)).unwrap();
        let mut corrupted = spilled;
        corrupted.bytes[flip_byte] ^= 1 << flip_bit;
        if let Ok(l1) = fill(&corrupted) {
            let line = l1.line();
            for i in line.security_byte_indices() {
                prop_assert_eq!(line.data()[i], 0);
            }
        }
    }

    /// Plain (non-califormed) lines always decode to themselves.
    #[test]
    fn plain_lines_decode_verbatim(half in proptest::array::uniform32(any::<u8>())) {
        let mut bytes = [0u8; LINE_BYTES];
        for i in 0..LINE_BYTES {
            bytes[i] = half[i % 32] ^ (i as u8);
        }
        let l1 = fill(&L2Line::plain(bytes)).unwrap();
        prop_assert_eq!(l1.line().data(), &bytes);
        prop_assert_eq!(l1.line().security_mask(), 0);
    }
}
