//! Property-based tests for the core Califorms invariants (DESIGN.md §6).

use califorms_core::bitvector1::L1Line1;
use califorms_core::bitvector4::L1Line4;
use califorms_core::cform::CformInstruction;
use califorms_core::convert::{fill, spill};
use califorms_core::hwlogic;
use califorms_core::line::{CaliformedLine, LINE_BYTES};
use califorms_core::L1Line;
use proptest::prelude::*;

fn arb_line() -> impl Strategy<Value = CaliformedLine> {
    (proptest::array::uniform32(any::<u8>()), any::<u64>()).prop_map(|(half, mask)| {
        // Expand 32 random bytes into 64 deterministically (keeps the
        // strategy small without losing byte diversity).
        let mut data = [0u8; LINE_BYTES];
        for i in 0..LINE_BYTES {
            data[i] = half[i % 32].wrapping_add(i as u8);
        }
        CaliformedLine::new(data, mask)
    })
}

proptest! {
    /// Invariant (format round-trip): fill ∘ spill = identity.
    #[test]
    fn spill_fill_round_trip(line in arb_line()) {
        let l1 = L1Line::new(line);
        let l2 = spill(&l1).expect("spill always succeeds on canonical lines");
        let back = fill(&l2).expect("fill of spilled line succeeds");
        prop_assert_eq!(back, l1);
    }

    /// Invariant (sentinel existence): any line with ≥1 security byte has a
    /// free 6-bit pattern among its normal bytes.
    #[test]
    fn sentinel_always_found(line in arb_line()) {
        prop_assume!(line.is_califormed());
        let s = hwlogic::find_sentinel(line.data(), line.security_mask());
        prop_assert!(s.is_some());
        let s = s.unwrap();
        for i in line.normal_byte_indices() {
            prop_assert_ne!(line.data()[i] & 0x3F, s & 0x3F);
        }
    }

    /// The spilled format marks the line califormed iff it has security
    /// bytes, and clean lines are stored verbatim (the "natural" format).
    #[test]
    fn clean_lines_stay_natural(line in arb_line()) {
        let l2 = spill(&L1Line::new(line)).unwrap();
        prop_assert_eq!(l2.califormed, line.is_califormed());
        if !line.is_califormed() {
            prop_assert_eq!(&l2.bytes, line.data());
        }
    }

    /// Loads never observe security-byte data: every byte a load returns
    /// from a security position is zero, and violations are flagged.
    #[test]
    fn loads_zero_security_bytes(line in arb_line(), offset in 0usize..64, len in 1usize..16) {
        let len = len.min(LINE_BYTES - offset);
        let l1 = L1Line::new(line);
        let r = l1.load(offset, len);
        for i in 0..len {
            if line.is_security_byte(offset + i) {
                prop_assert_eq!(r.data[i], 0);
                prop_assert_eq!(r.violating_bytes >> i & 1, 1);
            } else {
                prop_assert_eq!(r.data[i], line.data()[offset + i]);
            }
        }
        prop_assert_eq!(r.violation, r.violating_bytes != 0);
    }

    /// CFORM set∘unset over any mask restores the original security mask
    /// (with affected data zeroed), and never faults when applied to
    /// disjoint state.
    #[test]
    fn cform_set_unset_round_trip(line in arb_line(), delta in any::<u64>()) {
        let free = !line.security_mask() & delta;
        prop_assume!(free != 0);
        let mut work = line;
        CformInstruction::set(0, free).execute(&mut work).unwrap();
        prop_assert_eq!(work.security_mask(), line.security_mask() | free);
        CformInstruction::unset(0, free).execute(&mut work).unwrap();
        prop_assert_eq!(work.security_mask(), line.security_mask());
        // Data at the touched positions is zeroed, untouched data survives.
        for i in 0..LINE_BYTES {
            if free >> i & 1 == 1 {
                prop_assert_eq!(work.read_byte(i), 0);
            } else if !line.is_security_byte(i) {
                prop_assert_eq!(work.read_byte(i), line.read_byte(i));
            }
        }
    }

    /// CFORM faults atomically: on error the line is unchanged.
    #[test]
    fn cform_faults_atomically(line in arb_line(), attrs in any::<u64>(), mask in any::<u64>()) {
        let mut work = line;
        let insn = CformInstruction::new(0, attrs, mask);
        if insn.execute(&mut work).is_err() {
            prop_assert_eq!(work, line);
        }
    }

    /// Appendix variants are lossless encodings of the canonical line.
    #[test]
    fn appendix_variants_round_trip(line in arb_line()) {
        prop_assert_eq!(L1Line4::encode(&line).decode(), line);
        prop_assert_eq!(L1Line1::encode(&line).decode(), line);
        // And their access checks agree with the canonical mask.
        let v4 = L1Line4::encode(&line);
        let v1 = L1Line1::encode(&line);
        for i in 0..LINE_BYTES {
            prop_assert_eq!(v4.is_security_byte(i), line.is_security_byte(i));
            prop_assert_eq!(v1.is_security_byte(i), line.is_security_byte(i));
        }
    }

    /// The sentinel header survives the spill: decoding the spilled line's
    /// header yields the first min(n,4) security locations in order.
    #[test]
    fn header_lists_first_locations(line in arb_line()) {
        prop_assume!(line.is_califormed());
        let l2 = spill(&L1Line::new(line)).unwrap();
        let header = l2.header().unwrap();
        let expected: Vec<u8> = line
            .security_byte_indices()
            .take(4)
            .map(|i| i as u8)
            .collect();
        prop_assert_eq!(header.listed, expected);
        prop_assert_eq!(
            header.sentinel.is_some(),
            line.security_byte_count() >= 4
        );
    }
}
