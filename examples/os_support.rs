//! The OS side of Califorms (Section 6.3): a califormed page swapped to
//! disk and back (metadata parked in 8 B of reserved kernel space), a
//! `write()` crossing the I/O boundary, and the DMA hazard.
//!
//! ```sh
//! cargo run --example os_support
//! ```

use califorms::sim::dma::DmaEngine;
use califorms::sim::os::{io_write, SwapManager, PAGE_BYTES};
use califorms::sim::{Engine, TraceOp};

fn main() {
    let mut engine = Engine::westmere();
    let page = 2 * PAGE_BYTES; // a page-aligned victim

    // A struct-ish object with a secret and a security span.
    engine.step(TraceOp::Store {
        addr: page,
        size: 8,
    });
    engine.step(TraceOp::Cform {
        line_addr: page,
        attrs: 0b11 << 20,
        mask: 0b11 << 20,
    });
    println!("object at {page:#x}: 8 data bytes + security bytes at offsets 20-21");

    // --- Page swap round trip. ---
    let mut swap = SwapManager::new();
    swap.swap_out(&mut engine.hierarchy, page);
    println!(
        "swapped out: {} page(s) on the device, {} B of kernel metadata (8 B per 4 KB page)",
        swap.swapped_pages(),
        swap.metadata_bytes()
    );
    swap.swap_in(&mut engine.hierarchy, page);
    println!(
        "swapped in: metadata reclaimed ({} B held)",
        swap.metadata_bytes()
    );
    assert!(engine.hierarchy.peek_is_security_byte(page + 20));
    engine.step(TraceOp::Load {
        addr: page + 20,
        size: 1,
    });
    println!(
        "tripwire still armed after the round trip: {}",
        engine.delivered_exceptions()[0]
    );

    // --- I/O boundary. ---
    let export = io_write(&mut engine.hierarchy, page + 16, 8);
    println!(
        "write() of bytes 16..24 exported {:02x?} ({} security byte(s) stripped to zero)",
        export.data, export.security_bytes_crossed
    );
    assert!(
        engine.hierarchy.peek_is_security_byte(page + 20),
        "in-memory copy stays protected"
    );

    // --- DMA. ---
    let aware = DmaEngine::respecting().read(&mut engine.hierarchy, page, 8);
    let legacy = DmaEngine::bypassing().read(&mut engine.hierarchy, page, 8);
    println!("califorms-aware DMA sees: {:02x?}", aware.data);
    println!(
        "legacy DMA sees:          {:02x?}  <- sentinel header, not data!",
        legacy.data
    );
    println!();
    println!("the legacy engine silently bypasses the tripwires AND garbles the");
    println!("line — why accelerators must adopt the califorming algorithm (Sec 7.2).");
}
