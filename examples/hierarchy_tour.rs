//! A tour of the simulated memory hierarchy: watch a califormed line get
//! evicted from the L1 (bitvector → sentinel spill), travel down to DRAM
//! with its single metadata bit, and come back (fill) with its security
//! bytes intact.
//!
//! ```sh
//! cargo run --example hierarchy_tour
//! ```

use califorms::sim::{Engine, TraceOp};

fn main() {
    let mut engine = Engine::westmere();
    let victim = 0x4_0000u64;

    // Write recognisable data and blacklist two interior bytes.
    engine.step(TraceOp::Store {
        addr: victim,
        size: 8,
    });
    engine.step(TraceOp::Cform {
        line_addr: victim,
        attrs: 1 << 20 | 1 << 41,
        mask: 1 << 20 | 1 << 41,
    });
    println!("line {victim:#x}: bytes 20 and 41 califormed (L1 bitvector format)");

    // Thrash the L1 set (32 KB / 8 ways / 64 B lines = 64 sets → stride 4 KB).
    for i in 1..=16u64 {
        engine.step(TraceOp::Load {
            addr: victim + i * 4096,
            size: 8,
        });
    }
    let spills = engine.hierarchy.spills;
    println!("after thrashing the set: {spills} califormed spill(s) L1 -> L2 (sentinel format)");
    assert!(spills >= 1);

    // Functional peek does not disturb the caches: the security bytes are
    // visible wherever the line currently lives.
    assert!(engine.hierarchy.peek_is_security_byte(victim + 20));
    assert!(engine.hierarchy.peek_is_security_byte(victim + 41));
    assert!(!engine.hierarchy.peek_is_security_byte(victim + 21));
    println!("security bytes survive in sentinel format below the L1");

    // Touch the line again: it fills back into the L1 (sentinel -> bitvector).
    engine.step(TraceOp::Load {
        addr: victim,
        size: 8,
    });
    let fills = engine.hierarchy.fills;
    println!("line re-filled into L1: {fills} califormed fill(s) so far");

    // Data integrity across the conversions.
    let r = engine.hierarchy.load(victim, 8, 0);
    assert!(r.exception.is_none());
    println!("original data intact after spill+fill: {:02x?}", r.data);

    // And the tripwire still fires.
    engine.step(TraceOp::Load {
        addr: victim + 20,
        size: 1,
    });
    let exc = engine
        .delivered_exceptions()
        .first()
        .expect("rogue access detected");
    println!("tripwire still armed after the round trip: {exc}");

    let stats = engine.finish().stats;
    println!();
    println!(
        "run stats: {} instructions, {:.0} cycles, L1 miss ratio {:.1}%, {} spills / {} fills",
        stats.instructions,
        stats.cycles,
        stats.l1d.miss_ratio() * 100.0,
        stats.spills,
        stats.fills,
    );
}
