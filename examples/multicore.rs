//! Multi-core tour: replay a read-mostly shared table on 4 cores over
//! the MESI-coherent califormed hierarchy, watch the coherence counters,
//! then let an attacker core probe a line the victim core owns.
//!
//! ```sh
//! cargo run --example multicore
//! ```

use califorms::layout::InsertionPolicy;
use califorms::security::attacks::cross_core_probe;
use califorms::sim::multicore::{MulticoreConfig, MulticoreEngine};
use califorms::sim::{HierarchyConfig, TraceOp};
use califorms::workloads::{generate_mt, run_mt, MtPattern, MtWorkloadConfig};

fn main() {
    // --- 1. Many concurrent users over one hot table. -------------------
    // 97 % loads of a shared 128 KB table, rare updates; every table line
    // carries a 7-byte security span installed by CFORMs, so each
    // cross-core transfer runs the real bitvector↔sentinel conversions.
    let workload = generate_mt(&MtWorkloadConfig {
        pattern: MtPattern::SharedTable,
        cores: 4,
        ops_per_core: 10_000,
        seed: 7,
        califormed: true,
    });
    let stats = run_mt(&workload, HierarchyConfig::westmere());
    println!("shared-table on {} cores:", stats.cores());
    for (c, s) in stats.per_core.iter().enumerate() {
        println!(
            "  core {c}: {:>6} instrs, {:>9.0} cycles, IPC {:.2}, L1 miss {:.1}%",
            s.instructions,
            s.cycles,
            s.ipc(),
            s.l1d.miss_ratio() * 100.0
        );
    }
    let coh = &stats.combined.coherence;
    println!(
        "  aggregate IPC {:.2} | invalidations {} | S→M upgrades {} | \
         cache-to-cache {} (califormed: {})",
        stats.aggregate_ipc(),
        coh.invalidations,
        coh.upgrades_s_to_m,
        coh.cache_to_cache_transfers,
        coh.califormed_transfers
    );
    assert_eq!(
        stats.combined.exceptions_delivered, 0,
        "legit threads never fault"
    );

    // --- 2. The hazard: a remote core probing an owned line. ------------
    // Victim (core 0) blacklists byte 21 of a line and keeps it Modified;
    // the attacker (core 1) probes it. The recall spills the line in the
    // victim's L1, the attacker's fill re-derives the bit vector, and the
    // probe traps at the exact byte.
    let line = 0x2000u64;
    let victim = vec![
        TraceOp::Store {
            addr: line,
            size: 8,
        },
        TraceOp::Cform {
            line_addr: line,
            attrs: 1 << 21,
            mask: 1 << 21,
        },
    ];
    let attacker = vec![
        TraceOp::Exec(100_000), // let the victim finish its setup quantum
        TraceOp::Load {
            addr: line + 21,
            size: 1,
        },
    ];
    let out = MulticoreEngine::new(MulticoreConfig::westmere(2)).run(vec![victim, attacker]);
    let exc = out.exceptions[1][0];
    println!(
        "cross-core probe of byte 21: trapped at {:#x} (expected {:#x})",
        exc.fault_addr,
        line + 21
    );
    assert_eq!(exc.fault_addr, line + 21);

    // --- 3. The same result through the full attack scenario. -----------
    let report = cross_core_probe(InsertionPolicy::full_1_to(7), 7);
    println!("{}: {:?}", report.name, report.outcome);
    assert!(report.outcome.detected(), "remote sweeps must be caught");
}
