//! The paper's motivating attack: an intra-object overflow from
//! `buf[64]` into the function pointer behind it (Listing 1), and how
//! each insertion policy fares against it — plus the use-after-free that
//! the quarantining heap catches regardless of policy.
//!
//! ```sh
//! cargo run --example intra_object_overflow
//! ```

use califorms::layout::{InsertionPolicy, StructDef};
use califorms::security::attacks::{
    intra_object_overflow, intra_object_overread, use_after_free, AttackOutcome,
};

fn main() {
    let def = StructDef::paper_example();
    println!("victim type (paper Listing 1a): struct {} {{ char c; int i; char buf[64]; void (*fp)(); double d; }}", def.name);
    println!();

    let policies = [
        ("none (baseline)", InsertionPolicy::None),
        ("opportunistic", InsertionPolicy::Opportunistic),
        ("full 1-7B", InsertionPolicy::full_1_to(7)),
        ("intelligent 1-7B", InsertionPolicy::intelligent_1_to(7)),
    ];

    println!(
        "{:<18} | {:<30} | {:<30} | {:<16}",
        "policy", "overflow buf -> fp (write)", "overread buf -> fp (read)", "use-after-free"
    );
    println!("{:-<18}-+-{:-<30}-+-{:-<30}-+-{:-<16}", "", "", "", "");
    for (name, policy) in policies {
        let describe = |o: AttackOutcome| match o {
            AttackOutcome::Detected {
                fault_addr,
                after_accesses,
            } => format!("DETECTED @{fault_addr:#x} (access {after_accesses})"),
            AttackOutcome::Undetected { .. } => "missed".to_string(),
        };
        println!(
            "{:<18} | {:<30} | {:<30} | {:<16}",
            name,
            describe(intra_object_overflow(policy, 1).outcome),
            describe(intra_object_overread(policy, 1).outcome),
            describe(use_after_free(policy, 1).outcome),
        );
    }

    println!();
    println!("notes:");
    println!(" * the opportunistic policy misses this one: the compiler leaves no");
    println!("   padding between buf and fp, so there is nothing to harvest there");
    println!("   (the paper's motivation for the full/intelligent policies);");
    println!(" * a canary would catch only the write, never the read;");
    println!(" * use-after-free is caught by the clean-before-use heap even with");
    println!("   no insertion policy at all — temporal safety comes from the");
    println!("   allocator keeping freed memory califormed.");
}
