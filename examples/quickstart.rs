//! Quickstart: caliform a line, watch the formats convert through the
//! hierarchy, and catch a rogue access.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use califorms::core::{fill, spill, CaliformedLine, CformInstruction, L1Line};
use califorms::sim::{Engine, TraceOp};

fn main() {
    // --- 1. The primitive: blacklist bytes inside a cache line. ---------
    let mut line = CaliformedLine::from_data(
        *b"Hello, Califorms!...............................................",
    );
    // Blacklist bytes 17..20 with a CFORM (Table 1 semantics: set on
    // regular bytes succeeds; set on an existing security byte would trap).
    CformInstruction::set(0, 0b111 << 17)
        .execute(&mut line)
        .expect("bytes were regular");
    println!("security mask: {:#018x}", line.security_mask());

    // --- 2. The formats: L1 bitvector <-> L2 sentinel. ------------------
    let l1 = L1Line::new(line);
    let l2 = spill(&l1).expect("spill always succeeds");
    println!(
        "L2 line is califormed: {} (count code {:02b}, 1 metadata bit per line)",
        l2.califormed,
        l2.bytes[0] & 0b11
    );
    let back = fill(&l2).expect("fill inverts spill");
    assert_eq!(back, l1, "fill(spill(x)) == x");
    println!("round-trip through the sentinel format: exact");

    // --- 3. The machine: detection happens in the cache hierarchy. ------
    let mut engine = Engine::westmere();
    // A victim object at 0x1000 with a security byte at offset 12.
    engine.step(TraceOp::Store {
        addr: 0x1000,
        size: 8,
    });
    engine.step(TraceOp::Cform {
        line_addr: 0x1000,
        attrs: 1 << 12,
        mask: 1 << 12,
    });
    // Legitimate access: fine.
    engine.step(TraceOp::Load {
        addr: 0x1000,
        size: 8,
    });
    assert!(engine.delivered_exceptions().is_empty());
    // Rogue access sweeping the security byte: privileged exception.
    engine.step(TraceOp::Load {
        addr: 0x1008,
        size: 8,
    });
    let exc = engine.delivered_exceptions()[0];
    println!("rogue load trapped: {exc}");
    println!("(the load itself architecturally returned zero — no speculative leak)");
}
