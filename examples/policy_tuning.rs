//! Tuning security vs performance: run one SPEC-like workload under every
//! insertion policy and print the overhead/coverage trade-off the paper's
//! Section 8.2 explores ("the user/customer can tune the security
//! according to their performance requirements").
//!
//! ```sh
//! cargo run --release --example policy_tuning [steady_ops]
//! ```

use califorms::layout::InsertionPolicy;
use califorms::sim::HierarchyConfig;
use califorms::workloads::{generate, run_workload, spec, WorkloadConfig};

fn main() {
    let ops: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60_000);
    let profile = spec::by_name("perlbench").expect("known benchmark");
    println!(
        "workload: {} (malloc-intensive; {} live objects, {} churn pairs / 1k ops; {ops} steady ops)",
        profile.name, profile.live_objects, profile.churn_per_kop
    );
    println!();

    let baseline = run_workload(
        &generate(&profile, &WorkloadConfig::baseline(ops, 0)),
        HierarchyConfig::westmere(),
    );

    let policies = [
        ("opportunistic", InsertionPolicy::Opportunistic),
        ("intelligent 1-3B", InsertionPolicy::intelligent_1_to(3)),
        ("intelligent 1-7B", InsertionPolicy::intelligent_1_to(7)),
        ("full 1-3B", InsertionPolicy::full_1_to(3)),
        ("full 1-7B", InsertionPolicy::full_1_to(7)),
    ];

    println!(
        "{:<18} | {:>9} | {:>12} | {:>11} | {:>8}",
        "policy", "slowdown", "mem overhead", "sec bytes/obj", "CFORMs"
    );
    println!(
        "{:-<18}-+-{:-<9}-+-{:-<12}-+-{:-<11}-+-{:-<8}",
        "", "", "", "", ""
    );
    for (name, policy) in policies {
        let w = generate(&profile, &WorkloadConfig::with_policy(policy, ops, 0));
        let stats = run_workload(&w, HierarchyConfig::westmere());
        println!(
            "{:<18} | {:>8.2}% | {:>11.1}% | {:>13} | {:>8}",
            name,
            stats.slowdown_vs(&baseline) * 100.0,
            (w.object_size as f64 / w.natural_object_size as f64 - 1.0) * 100.0,
            w.security_bytes_per_object,
            stats.cforms,
        );
    }
    println!();
    println!("reading the table: opportunistic is nearly free in memory but only");
    println!("covers existing padding; full maximises coverage at the highest cost;");
    println!("intelligent concentrates spans on arrays and pointers — the paper's");
    println!("recommended deployment point.");
}
