//! End-to-end integration tests spanning the whole workspace: compiler
//! layout → allocator → simulated hierarchy → exceptions, exactly the
//! full-system flow of the paper's Section 3.

use califorms::alloc::{AllocatorConfig, CaliformsHeap, CaliformsStack, FreeMode};
use califorms::core::{AccessKind, ExceptionKind};
use califorms::layout::{InsertionPolicy, StructDef};
use califorms::sim::{CoreConfig, Engine, HierarchyConfig, TraceOp};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn engine() -> Engine {
    Engine::westmere()
}

#[test]
fn compile_allocate_run_detect() {
    // Compile: intelligent policy over the paper's running example.
    let mut rng = SmallRng::seed_from_u64(1);
    let layout = InsertionPolicy::intelligent_1_to(7).apply(&StructDef::paper_example(), &mut rng);
    assert!(!layout.security_spans.is_empty());

    // Allocate: the heap issues the CFORMs.
    let mut heap = CaliformsHeap::new(0x10_0000, AllocatorConfig::default());
    let mut ops = Vec::new();
    let base = heap.malloc(&layout, &mut ops);

    // Run: legitimate field writes, then the overflow.
    let buf = layout.field_offset("buf").unwrap() as u64;
    ops.push(TraceOp::Store {
        addr: base + buf,
        size: 8,
    }); // legit
    ops.push(TraceOp::Store {
        addr: base + buf + 64, // first byte past buf: the span
        size: 1,
    });
    let mut e = engine();
    for op in ops {
        e.step(op);
    }
    let exc = e.delivered_exceptions().first().expect("overflow detected");
    assert_eq!(exc.access, AccessKind::Store);
    assert_eq!(exc.kind, ExceptionKind::SecurityByteAccess);
    assert_eq!(exc.fault_addr, base + buf + 64);
}

#[test]
fn temporal_safety_through_the_full_stack() {
    let mut rng = SmallRng::seed_from_u64(2);
    let layout = InsertionPolicy::Opportunistic.apply(&StructDef::paper_example(), &mut rng);
    let mut heap = CaliformsHeap::new(0x20_0000, AllocatorConfig::default());
    let mut ops = Vec::new();
    let a = heap.malloc(&layout, &mut ops);
    // Victim stores a secret, frees, then a stale pointer dereferences.
    ops.push(TraceOp::Store {
        addr: a + 8,
        size: 8,
    });
    heap.free(a, &mut ops);
    ops.push(TraceOp::Load {
        addr: a + 8,
        size: 8,
    });
    let mut e = engine();
    for op in ops {
        e.step(op);
    }
    assert_eq!(e.delivered_exceptions().len(), 1, "UAF trapped");
    // And the zeroing discipline: the freed secret reads back as zero.
    assert_eq!(e.hierarchy.peek_byte(a + 8), 0);
}

#[test]
fn quarantine_prevents_immediate_reuse_end_to_end() {
    let mut rng = SmallRng::seed_from_u64(3);
    let layout = InsertionPolicy::None.apply(&StructDef::paper_example(), &mut rng);
    let cfg = AllocatorConfig {
        quarantine_bytes: 4096,
        ..AllocatorConfig::default()
    };
    let mut heap = CaliformsHeap::new(0x30_0000, cfg);
    let mut ops = Vec::new();
    let a = heap.malloc(&layout, &mut ops);
    heap.free(a, &mut ops);
    let b = heap.malloc(&layout, &mut ops);
    assert_ne!(a, b, "freed block must stay quarantined");
}

#[test]
fn whitelisted_memcpy_sweeps_without_faulting() {
    let mut rng = SmallRng::seed_from_u64(4);
    let layout = InsertionPolicy::full_1_to(7).apply(&StructDef::paper_example(), &mut rng);
    let mut heap = CaliformsHeap::new(0x40_0000, AllocatorConfig::default());
    let mut ops = Vec::new();
    let base = heap.malloc(&layout, &mut ops);
    // struct-to-struct copy: sweeps every byte, including security bytes.
    ops.push(TraceOp::MaskPush);
    for off in 0..layout.size as u64 {
        ops.push(TraceOp::Load {
            addr: base + off,
            size: 1,
        });
    }
    ops.push(TraceOp::MaskPop);
    // After the whitelisted region, protection is live again.
    let span = layout.security_spans[0].offset as u64;
    ops.push(TraceOp::Load {
        addr: base + span,
        size: 1,
    });
    let mut e = engine();
    for op in ops {
        e.step(op);
    }
    let out = e.finish();
    assert!(
        out.stats.exceptions_suppressed > 0,
        "memcpy accesses masked"
    );
    assert_eq!(out.stats.exceptions_delivered, 1, "rogue access after pop");
}

#[test]
fn stack_and_heap_compose() {
    let mut rng = SmallRng::seed_from_u64(5);
    let layout = InsertionPolicy::intelligent_1_to(5).apply(&StructDef::paper_example(), &mut rng);
    let mut heap = CaliformsHeap::new(0x50_0000, AllocatorConfig::default());
    let mut stack = CaliformsStack::new(0x7FFF_0000);
    let mut ops = Vec::new();
    let h = heap.malloc(&layout, &mut ops);
    let s = stack.push_frame(&layout, &mut ops);
    let mut e = engine();
    for op in ops.drain(..) {
        e.step(op);
    }
    // Both objects' spans are armed simultaneously.
    let span = layout.security_spans[0].offset as u64;
    assert!(e.hierarchy.peek_is_security_byte(h + span));
    assert!(e.hierarchy.peek_is_security_byte(s + span));
    // Frame pop disarms only the stack copy.
    stack.pop_frame(&mut ops);
    for op in ops {
        e.step(op);
    }
    assert!(e.hierarchy.peek_is_security_byte(h + span));
    assert!(!e.hierarchy.peek_is_security_byte(s + span));
}

#[test]
fn califormed_data_survives_cache_pressure() {
    // Fill far more lines than the whole hierarchy holds; every line gets
    // a security byte and a data byte; verify all of them at the end.
    let mut e = Engine::new(HierarchyConfig::westmere(), CoreConfig::westmere());
    let lines = 40_000u64; // 2.5 MB > L3
    for i in 0..lines {
        let base = 0x100_0000 + i * 64;
        e.step(TraceOp::Store {
            addr: base,
            size: 4,
        });
        e.step(TraceOp::Cform {
            line_addr: base,
            attrs: 1 << 9,
            mask: 1 << 9,
        });
    }
    assert_eq!(e.delivered_exceptions().len(), 0);
    // Revisit a sample across the space (every 97th line): the loads pull
    // califormed lines back through the fill path, and the spot-checks
    // confirm the metadata survived the round trip.
    for i in (0..lines).step_by(97) {
        let base = 0x100_0000 + i * 64;
        e.step(TraceOp::Load {
            addr: base,
            size: 4,
        });
        assert!(e.hierarchy.peek_is_security_byte(base + 9), "line {i}");
        assert!(!e.hierarchy.peek_is_security_byte(base + 10), "line {i}");
    }
    assert_eq!(e.delivered_exceptions().len(), 0);
    let stats = e.finish().stats;
    assert!(stats.spills > 0, "pressure forced califormed spills");
    assert!(stats.fills > 0);
}

#[test]
fn span_only_free_mode_matches_paper_emulation_accounting() {
    let mut rng = SmallRng::seed_from_u64(6);
    let layout = InsertionPolicy::Opportunistic.apply(&StructDef::paper_example(), &mut rng);
    let mk = |mode: FreeMode| {
        let mut heap = CaliformsHeap::new(
            0x60_0000,
            AllocatorConfig {
                free_mode: mode,
                ..AllocatorConfig::default()
            },
        );
        let mut ops = Vec::new();
        let b = heap.malloc(&layout, &mut ops);
        heap.free(b, &mut ops);
        heap.stats().cform_ops
    };
    let full = mk(FreeMode::FullObject);
    let span_only = mk(FreeMode::SpanOnly);
    assert!(
        span_only < full,
        "span-only emulation issues fewer CFORMs ({span_only} vs {full})"
    );
}
