//! Provenance checks on the committed benchmark artifacts: numbers in
//! `BENCH_replay.json` that claim to describe the engine's data layout
//! must actually be derived from it, not hand-typed constants that rot
//! when the layout changes.

use califorms::sim::TraceOp;

/// Extracts the first `"key": <number>` value from a JSON document by
/// string scanning — the committed artifact is machine-written by the
/// replay bench, so the plain `"key":` spelling is stable.
fn json_number(doc: &str, key: &str) -> f64 {
    let needle = format!("\"{key}\":");
    let at = doc
        .find(&needle)
        .unwrap_or_else(|| panic!("BENCH_replay.json has no `{key}` field"));
    let rest = doc[at + needle.len()..].trim_start();
    let end = rest
        .find([',', '}', '\n'])
        .expect("number is terminated");
    rest[..end]
        .trim()
        .parse()
        .unwrap_or_else(|e| panic!("`{key}` is not a number: {e}"))
}

/// The `vec_bytes_per_op` column of `BENCH_replay.json` is the
/// per-element footprint of unpacked `Vec<TraceOp>` replay, and the
/// bench computes it as `size_of::<TraceOp>()` at runtime — so the
/// committed artifact must match the type the workspace actually
/// compiles, pinning the regenerate-on-layout-change discipline.
#[test]
fn committed_replay_artifact_vec_bytes_per_op_is_the_trace_op_size() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("BENCH_replay.json");
    let doc = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    let committed = json_number(&doc, "vec_bytes_per_op");
    assert_eq!(
        committed,
        std::mem::size_of::<TraceOp>() as f64,
        "BENCH_replay.json was generated against a different TraceOp \
         layout — rerun `cargo run --release --bin replay` and commit \
         the refreshed artifact"
    );
    // The layout itself: 32 bytes is the packing the pack-format docs
    // assume (DESIGN.md §9); growing TraceOp is a deliberate decision,
    // not a drive-by.
    assert_eq!(std::mem::size_of::<TraceOp>(), 32);
}
