//! Scaled-down sanity runs of the headline experiments: these assert the
//! *shape* claims the reproduction stands on, at a size quick enough for
//! CI (the bench binaries run the full-scale versions).

use califorms::layout::census::{Corpus, CorpusProfile};
use califorms::layout::InsertionPolicy;
use califorms::sim::HierarchyConfig;
use califorms::workloads::{generate, run_workload, spec, WorkloadConfig};

const OPS: usize = 15_000;

fn slowdown(bench: &str, variant: WorkloadConfig, hier: HierarchyConfig) -> f64 {
    let profile = spec::by_name(bench).unwrap();
    let base = generate(
        &profile,
        &WorkloadConfig::baseline(variant.steady_ops, variant.seed),
    );
    let with = generate(&profile, &variant);
    let sb = run_workload(&base, HierarchyConfig::westmere());
    let sv = run_workload(&with, hier);
    sv.slowdown_vs(&sb)
}

#[test]
fn fig3_shape_padding_fractions() {
    let spec_corpus = Corpus::generate(CorpusProfile::SpecCpu2006, 10_000, 1);
    let v8_corpus = Corpus::generate(CorpusProfile::V8, 10_000, 1);
    let s = spec_corpus.fraction_with_padding();
    let v = v8_corpus.fraction_with_padding();
    assert!((s - 0.457).abs() < 0.06, "SPEC fraction {s:.3}");
    assert!((v - 0.410).abs() < 0.06, "V8 fraction {v:.3}");
    assert!(s > v, "SPEC mix has more holes than V8's, as in Figure 3");
}

#[test]
fn fig4_shape_monotone_padding_cost() {
    // On a cache-hungry benchmark, more padding always costs more.
    let one = slowdown(
        "mcf",
        WorkloadConfig::without_cforms(InsertionPolicy::FixedPad(1), OPS, 3),
        HierarchyConfig::westmere(),
    );
    let seven = slowdown(
        "mcf",
        WorkloadConfig::without_cforms(InsertionPolicy::FixedPad(7), OPS, 3),
        HierarchyConfig::westmere(),
    );
    assert!(seven > one, "7B ({seven:.3}) > 1B ({one:.3})");
    assert!(one > 0.0);
}

#[test]
fn fig10_shape_memory_bound_suffers_most() {
    let hmmer = slowdown(
        "hmmer",
        WorkloadConfig::baseline(OPS, 1),
        HierarchyConfig::westmere_plus_one_cycle(),
    );
    let xalanc = slowdown(
        "xalancbmk",
        WorkloadConfig::baseline(OPS, 1),
        HierarchyConfig::westmere_plus_one_cycle(),
    );
    assert!(hmmer < xalanc, "hmmer {hmmer:.4} < xalancbmk {xalanc:.4}");
    assert!(hmmer < 0.01, "compute-bound: sub-1% ({hmmer:.4})");
    assert!(
        xalanc < 0.05,
        "even the worst case stays small ({xalanc:.4})"
    );
}

#[test]
fn fig11_12_shape_policy_ordering() {
    // On the malloc-intensive benchmark: intelligent+CFORM is cheaper than
    // full+CFORM, and the full policy's padding alone costs something.
    let full_cform = slowdown(
        "perlbench",
        WorkloadConfig::with_policy(InsertionPolicy::full_1_to(7), OPS, 2),
        HierarchyConfig::westmere(),
    );
    let intel_cform = slowdown(
        "perlbench",
        WorkloadConfig::with_policy(InsertionPolicy::intelligent_1_to(7), OPS, 2),
        HierarchyConfig::westmere(),
    );
    let full_padding_only = slowdown(
        "perlbench",
        WorkloadConfig::without_cforms(InsertionPolicy::full_1_to(7), OPS, 2),
        HierarchyConfig::westmere(),
    );
    assert!(
        intel_cform < full_cform,
        "intelligent ({intel_cform:.3}) < full ({full_cform:.3})"
    );
    assert!(
        full_padding_only < full_cform,
        "CFORM work adds on top of padding ({full_padding_only:.3} < {full_cform:.3})"
    );
}

#[test]
fn gobmk_is_the_intelligent_policy_outlier() {
    // Figure 12's anomaly: gobmk's deep recursion with array-bearing
    // frames makes it the worst case for intelligent+CFORM (paper 16.1%).
    let gobmk = slowdown(
        "gobmk",
        WorkloadConfig::with_policy(InsertionPolicy::intelligent_1_to(7), OPS, 4),
        HierarchyConfig::westmere(),
    );
    let milc = slowdown(
        "milc",
        WorkloadConfig::with_policy(InsertionPolicy::intelligent_1_to(7), OPS, 4),
        HierarchyConfig::westmere(),
    );
    assert!(gobmk > milc, "gobmk {gobmk:.3} > milc {milc:.3}");
    assert!(gobmk > 0.05, "gobmk is a double-digit-ish outlier");
}

#[test]
fn opportunistic_is_memory_free() {
    for bench in ["astar", "perlbench", "lbm"] {
        let profile = spec::by_name(bench).unwrap();
        let w = generate(
            &profile,
            &WorkloadConfig::with_policy(InsertionPolicy::Opportunistic, 2_000, 5),
        );
        assert_eq!(
            w.object_size, w.natural_object_size,
            "{bench}: opportunistic never grows objects"
        );
    }
}

#[test]
fn legitimate_runs_never_fault_under_any_policy() {
    for policy in [
        InsertionPolicy::Opportunistic,
        InsertionPolicy::full_1_to(7),
        InsertionPolicy::intelligent_1_to(3),
        InsertionPolicy::FixedPad(5),
    ] {
        for bench in ["perlbench", "mcf", "gobmk"] {
            let profile = spec::by_name(bench).unwrap();
            let w = generate(&profile, &WorkloadConfig::with_policy(policy, 4_000, 6));
            let stats = run_workload(&w, HierarchyConfig::westmere());
            assert_eq!(
                stats.exceptions_delivered, 0,
                "{bench} under {policy:?} must run clean"
            );
        }
    }
}
