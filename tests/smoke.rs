//! Workspace smoke test: the quickstart flow, end to end.
//!
//! Exercises the whole stack in one pass — store, `CFORM` blacklist,
//! benign load passing, and an overflowing load trapping at the exact
//! byte — first against the raw simulator, then through the layout
//! engine and heap allocator the way an instrumented program would.

use califorms::alloc::{AllocatorConfig, CaliformsHeap};
use califorms::layout::{InsertionPolicy, StructDef};
use califorms::sim::{Engine, TraceOp};
use rand::rngs::SmallRng;
use rand::SeedableRng;

#[test]
fn store_cform_benign_load_then_trap_at_exact_byte() {
    let mut engine = Engine::westmere();

    // Store into a fresh line, then blacklist bytes 12..=13.
    engine.step(TraceOp::Store {
        addr: 0x1000,
        size: 8,
    });
    engine.step(TraceOp::Cform {
        line_addr: 0x1000,
        attrs: 0b11 << 12,
        mask: 0b11 << 12,
    });

    // A correct program never notices the security bytes.
    engine.step(TraceOp::Load {
        addr: 0x1000,
        size: 8,
    });
    assert!(
        engine.delivered_exceptions().is_empty(),
        "benign load must not trap"
    );

    // An overflowing load is caught at the exact byte.
    engine.step(TraceOp::Load {
        addr: 0x100C,
        size: 1,
    });
    let delivered = engine.delivered_exceptions();
    assert_eq!(delivered.len(), 1, "rogue load must trap");
    assert_eq!(
        delivered[0].fault_addr, 0x100C,
        "trap reports the exact overflowing byte"
    );
}

#[test]
fn heap_allocated_object_overflow_traps_on_its_security_span() {
    // Lay out the paper's example struct under the full insertion policy,
    // allocate it through the califorms heap (which emits the CFORMs)…
    let mut rng = SmallRng::seed_from_u64(1);
    let layout = InsertionPolicy::full_1_to(7).apply(&StructDef::paper_example(), &mut rng);
    assert!(
        !layout.security_spans.is_empty(),
        "full policy must insert security spans"
    );

    let mut heap = CaliformsHeap::new(0x4000_0000, AllocatorConfig::default());
    let mut trace = Vec::new();
    let base = heap.malloc(&layout, &mut trace);

    // …touch every field the way the program would…
    for f in &layout.fields {
        trace.push(TraceOp::Load {
            addr: base + f.offset as u64,
            size: f.size.min(8) as u8,
        });
    }
    let mut engine = Engine::westmere();
    for op in &trace {
        engine.step(*op);
    }
    assert!(
        engine.delivered_exceptions().is_empty(),
        "allocation + field accesses must not trap"
    );

    // …then overflow into the object's first security span.
    let rogue = base + layout.security_spans[0].offset as u64;
    engine.step(TraceOp::Load {
        addr: rogue,
        size: 1,
    });
    let delivered = engine.delivered_exceptions();
    assert_eq!(delivered.len(), 1, "overflow into a span must trap");
    assert_eq!(
        delivered[0].fault_addr, rogue,
        "trap reports the exact span byte"
    );
}
