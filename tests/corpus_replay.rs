//! Replays every committed regression pack in `corpus/` through the
//! optimized simulator stacks and the differential oracle: all packs
//! must agree byte-for-byte on every configuration they target (see
//! `corpus/README.md`).

use califorms::oracle::corpus::{cores_from_file_name, read_pack, replay_pack_file};
use califorms::oracle::diff::{diff_pack, DiffConfig};

fn corpus_entries() -> Vec<std::path::PathBuf> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus");
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("corpus/ exists")
        .map(|e| e.expect("readable corpus entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "cftp"))
        .collect();
    entries.sort();
    entries
}

#[test]
fn every_corpus_pack_agrees_with_the_oracle() {
    let mut packs = 0usize;
    for path in corpus_entries() {
        packs += 1;
        let results = replay_pack_file(&path)
            .unwrap_or_else(|e| panic!("{}: unreadable: {e}", path.display()));
        assert!(!results.is_empty());
        for (cfg, divergence) in results {
            assert!(
                divergence.is_none(),
                "{} ({cfg}): {}",
                path.display(),
                divergence.unwrap()
            );
        }
    }
    assert!(packs >= 5, "corpus is populated (found {packs} packs)");
}

/// The speculative-weave corpus matrix (DESIGN.md §15): every
/// multi-core regression pack replays with the speculative weave at
/// 2 and 4 cores × weave batches {1, 64}, each run required
/// bit-identical to its serial twin *and* oracle-exact, including a
/// checkpoint+resume replay at batch 64.
///
/// Replaying a `-c4` pack at 2 cores is sound: the engine deals op `i`
/// to core `i % cores` whatever the pack was generated for, the oracle
/// lanes follow the same rule, and merging generated lanes keeps
/// blacklist writes core-exclusive (lane regions never overlap) — the
/// interleaving-independence argument of DESIGN.md §11 is preserved.
/// Single-core packs are excluded: their mask push/pop windows are not
/// lane-balanced, so dealing them to lanes makes the stream invalid.
#[test]
fn multicore_corpus_packs_agree_speculatively_across_core_matrix() {
    let mut checked = 0usize;
    for path in corpus_entries() {
        let Some(cores) = path
            .file_name()
            .and_then(|n| n.to_str())
            .and_then(cores_from_file_name)
        else {
            continue;
        };
        if cores < 2 {
            continue;
        }
        let pack = read_pack(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        for replay_cores in [2usize, 4] {
            for batch in [1u32, 64] {
                let cfg = DiffConfig {
                    speculative: true,
                    resume_at: (batch == 64).then_some(2),
                    ..DiffConfig::multicore(replay_cores, batch)
                };
                let d = diff_pack(&pack, &[], &cfg);
                assert!(
                    d.is_none(),
                    "{} (speculative, {replay_cores} cores, batch {batch}): {}",
                    path.display(),
                    d.unwrap()
                );
                checked += 1;
            }
        }
    }
    assert!(checked >= 4, "matrix exercised multi-core packs");
}
