//! Replays every committed regression pack in `corpus/` through the
//! optimized simulator stacks and the differential oracle: all packs
//! must agree byte-for-byte on every configuration they target (see
//! `corpus/README.md`).

use califorms::oracle::corpus::replay_pack_file;

#[test]
fn every_corpus_pack_agrees_with_the_oracle() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus");
    let mut packs = 0usize;
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("corpus/ exists")
        .map(|e| e.expect("readable corpus entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "cftp"))
        .collect();
    entries.sort();
    for path in entries {
        packs += 1;
        let results = replay_pack_file(&path)
            .unwrap_or_else(|e| panic!("{}: unreadable: {e}", path.display()));
        assert!(!results.is_empty());
        for (cfg, divergence) in results {
            assert!(
                divergence.is_none(),
                "{} ({cfg}): {}",
                path.display(),
                divergence.unwrap()
            );
        }
    }
    assert!(packs >= 5, "corpus is populated (found {packs} packs)");
}
