//! Integration tests for the OS layer and the Appendix B vector policies
//! through the facade crate, composed with the allocator.

use califorms::alloc::{AllocatorConfig, CaliformsHeap};
use califorms::layout::{InsertionPolicy, StructDef};
use califorms::sim::dma::DmaEngine;
use califorms::sim::os::{io_write, SwapManager, PAGE_BYTES};
use califorms::sim::vector::{vector_load, VectorMode};
use califorms::sim::{Engine, TraceOp};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Allocate a califormed object, swap its page out and in, and verify the
/// allocator-established protection survives the OS round trip.
#[test]
fn allocator_protection_survives_page_swap() {
    let mut rng = SmallRng::seed_from_u64(1);
    let layout = InsertionPolicy::full_1_to(7).apply(&StructDef::paper_example(), &mut rng);
    // Heap base on a page boundary so the object sits inside one page.
    let mut heap = CaliformsHeap::new(4 * PAGE_BYTES, AllocatorConfig::default());
    let mut ops = Vec::new();
    let base = heap.malloc(&layout, &mut ops);
    let mut engine = Engine::westmere();
    for op in ops {
        engine.step(op);
    }

    let page = base & !(PAGE_BYTES - 1);
    let mut swap = SwapManager::new();
    swap.swap_out(&mut engine.hierarchy, page);
    swap.swap_in(&mut engine.hierarchy, page);

    let span = layout.security_spans[0].offset as u64;
    engine.step(TraceOp::Load {
        addr: base + span,
        size: 1,
    });
    assert_eq!(
        engine.delivered_exceptions().len(),
        1,
        "span still armed after swap"
    );
}

/// `write()` of a califormed object exports field data but never span
/// markers; the object remains protected afterwards.
#[test]
fn io_export_strips_spans_end_to_end() {
    let mut rng = SmallRng::seed_from_u64(2);
    let layout = InsertionPolicy::intelligent_1_to(5).apply(&StructDef::paper_example(), &mut rng);
    let mut heap = CaliformsHeap::new(0x80_0000, AllocatorConfig::default());
    let mut ops = Vec::new();
    let base = heap.malloc(&layout, &mut ops);
    // Fill `buf` with recognisable data.
    let buf = layout.field_offset("buf").unwrap() as u64;
    for i in 0..8 {
        ops.push(TraceOp::Store {
            addr: base + buf + i * 8,
            size: 8,
        });
    }
    let mut engine = Engine::westmere();
    for op in ops {
        engine.step(op);
    }
    let export = io_write(&mut engine.hierarchy, base, layout.size);
    assert_eq!(export.data.len(), layout.size);
    assert_eq!(
        export.security_bytes_crossed,
        layout.security_bytes(),
        "every span byte crossed the boundary as zero"
    );
    for s in &layout.security_spans {
        assert!(export.data[s.offset..s.offset + s.len]
            .iter()
            .all(|&b| b == 0));
    }
    // Still armed in memory.
    let span = layout.security_spans[0].offset as u64;
    engine.step(TraceOp::Load {
        addr: base + span,
        size: 1,
    });
    assert_eq!(engine.delivered_exceptions().len(), 1);
}

/// A vectorised sweep over a califormed object behaves per Appendix B:
/// precise and trap-on-any fault, propagate poisons lanes instead.
#[test]
fn vector_sweep_over_califormed_object() {
    let mut rng = SmallRng::seed_from_u64(3);
    let layout = InsertionPolicy::full_1_to(7).apply(&StructDef::paper_example(), &mut rng);
    let build = || {
        let mut heap = CaliformsHeap::new(0x90_0000, AllocatorConfig::default());
        let mut ops = Vec::new();
        let base = heap.malloc(&layout, &mut ops);
        let mut engine = Engine::westmere();
        for op in ops {
            engine.step(op);
        }
        (engine, base)
    };
    let first_span = layout.security_spans[0].offset;
    let sweep_len = (first_span + 8).min(64);

    let (mut e, base) = build();
    let (r, _) = vector_load(&mut e.hierarchy, base, sweep_len, VectorMode::Precise, 0);
    assert!(r.exception.is_some(), "precise catches the span");

    let (mut e, base) = build();
    let (r, v) = vector_load(&mut e.hierarchy, base, sweep_len, VectorMode::Propagate, 0);
    assert!(r.exception.is_none(), "propagate defers");
    assert!(v.poison != 0);
    // Consuming only the in-bounds field lanes is clean.
    let clean_mask = (1u64 << first_span) - 1;
    assert_eq!(v.use_lanes(clean_mask), None);
}

/// The DMA matrix through a real allocation: aware engine sees zeros at
/// spans, legacy engine sees the raw sentinel format.
#[test]
fn dma_engines_disagree_exactly_on_califormed_lines() {
    let mut rng = SmallRng::seed_from_u64(4);
    let layout = InsertionPolicy::full_1_to(3).apply(&StructDef::paper_example(), &mut rng);
    let mut heap = CaliformsHeap::new(0xA0_0000, AllocatorConfig::default());
    let mut ops = Vec::new();
    let base = heap.malloc(&layout, &mut ops);
    let mut engine = Engine::westmere();
    for op in ops {
        engine.step(op);
    }
    let aware = DmaEngine::respecting().read(&mut engine.hierarchy, base, 64);
    let legacy = DmaEngine::bypassing().read(&mut engine.hierarchy, base, 64);
    assert!(aware.security_bytes_seen > 0);
    assert_eq!(legacy.security_bytes_seen, 0);
    assert_ne!(aware.data, legacy.data, "sentinel format leaks raw");
}
