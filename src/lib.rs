//! # califorms
//!
//! Facade crate for the Califorms reproduction — *Practical Byte-Granular
//! Memory Blacklisting using Califorms* (Sasaki et al., MICRO 2019).
//!
//! This crate re-exports the whole workspace under one roof so that
//! examples, integration tests and downstream users can depend on a single
//! crate:
//!
//! * [`core`] — cache-line formats (bitvector, sentinel), spill/fill
//!   conversion, the `CFORM` instruction and the privileged exception.
//! * [`sim`] — the trace-driven memory-hierarchy and core-timing simulator
//!   that substitutes for the paper's ZSim setup, including the
//!   multi-core subsystem: a MESI directory over per-core bitvector L1s
//!   ([`sim::coherence`]) and the deterministic parallel trace replay of
//!   [`sim::multicore::MulticoreEngine`].
//! * [`layout`] — the C-ABI struct-layout engine with the paper's three
//!   security-byte insertion policies.
//! * [`alloc`] — the quarantining, clean-before-use heap allocator model.
//! * [`workloads`] — SPEC CPU2006-like synthetic workload generators, plus
//!   the multi-threaded sharing patterns of [`workloads::multicore`].
//! * [`vlsi`] — the analytic area/delay/power model for Tables 2 and 7.
//! * [`security`] — attack simulations and the derandomisation math.
//! * [`baselines`] — REST / ADI / MPX comparison models and the
//!   qualitative matrices of Tables 4–6.
//! * [`oracle`] — the cache-free differential reference model, the
//!   deterministic trace fuzzer and the divergence shrinker (DESIGN.md
//!   §11).
//! * [`telemetry`] — deterministic counter registry, phase spans and the
//!   Chrome-trace-event/Perfetto exporter behind `--trace-out`
//!   (DESIGN.md §13).
//!
//! See `examples/quickstart.rs` for a guided tour and `DESIGN.md` for the
//! full system inventory.
//!
//! # Example
//!
//! Blacklist two bytes, lose the line to cache pressure, get it back and
//! still trap the rogue access:
//!
//! ```
//! use califorms::sim::{Engine, TraceOp};
//!
//! let mut engine = Engine::westmere();
//! engine.step(TraceOp::Store { addr: 0x1000, size: 8 });
//! engine.step(TraceOp::Cform {
//!     line_addr: 0x1000,
//!     attrs: 0b11 << 12,
//!     mask: 0b11 << 12,
//! });
//!
//! // A correct program never notices...
//! engine.step(TraceOp::Load { addr: 0x1000, size: 8 });
//! assert!(engine.delivered_exceptions().is_empty());
//!
//! // ...an overflowing one is caught at the exact byte.
//! engine.step(TraceOp::Load { addr: 0x100C, size: 1 });
//! assert_eq!(engine.delivered_exceptions()[0].fault_addr, 0x100C);
//! ```

#![forbid(unsafe_code)]

pub use califorms_alloc as alloc;
pub use califorms_baselines as baselines;
pub use califorms_core as core;
pub use califorms_layout as layout;
pub use califorms_oracle as oracle;
pub use califorms_security as security;
pub use califorms_sim as sim;
pub use califorms_telemetry as telemetry;
pub use califorms_vlsi as vlsi;
pub use califorms_workloads as workloads;
